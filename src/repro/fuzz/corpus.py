"""Replayable fuzz-spec artifacts: schema, codec and corpus directory.

A fuzz spec is a plain JSON-able dict -- the unit the generator emits, the
oracle consumes, the shrinker transforms and the corpus persists.  Keeping
the artifact declarative (catalog workload names, factory configuration
names, scalar overrides) means a reproducer found by one build replays
bit-identically on another: nothing machine- or process-local is inside.

Schema (``format`` 1)::

    {
      "format": 1,
      "label": "fuzz-0-17",
      "seed": 1234567,                  # trace-generator seed
      "warmup_fraction": 0.3,
      "chunk_size": 512,                # streaming chunk granularity
      "scenario": {
        "num_cores": 8,
        "phases": [
          {"name": "phase0", "accesses": 600, "intensity": 1.0,
           "bursts": [[0.2, 0.35, 2.0], ...],
           "tenants": [
             {"workload": "web_search", "cores": [0, 1, 2],
              "intensity": 1.5},
             ...
           ]},
          ...
        ]
      },
      "config": {
        "base": "bump",                 # named-configuration factory
        "overrides": {                  # optional, all scalar
          "page_policy": "close",
          "interleaving": "block",
          "timing_model": "interval",
          "arrival_cpi": 2.5
        }
      },
      "closed_loop": {                  # optional: feedback-driven traffic
        "target_latency": 120.0,        # (repro.scenario.closed_loop)
        "interval": 128,
        "gain": 0.5,
        "min_intensity": 0.25,
        "max_intensity": 4.0
      }
    }

:func:`materialize` turns a spec into live :class:`~repro.scenario.spec.
Scenario` / :class:`~repro.sim.config.SystemConfig` objects (re-validating
everything the constructors validate); :func:`spec_fingerprint` content-
addresses a spec for corpus-stability pins and artifact naming.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.common.fingerprint import fingerprint
from repro.dram.controller import PagePolicy
from repro.scenario.closed_loop import ClosedLoopSpec, as_closed_loop_spec
from repro.scenario.spec import Burst, Phase, Scenario, TenantAssignment
from repro.sim.config import SystemConfig, extended_configs, named_configs

__all__ = [
    "FuzzCase",
    "SPEC_FORMAT_VERSION",
    "corpus_paths",
    "load_spec",
    "materialize",
    "save_spec",
    "spec_fingerprint",
]

#: Bumped whenever the spec schema changes incompatibly; :func:`load_spec`
#: and :func:`materialize` refuse other versions so a stale corpus fails
#: loudly instead of silently replaying something else.
SPEC_FORMAT_VERSION = 1

#: Configuration fields a spec may override, with their decoders.  The
#: whitelist keeps artifacts portable: every value is a JSON scalar and every
#: decoded value passes ``SystemConfig.__post_init__`` validation.
_OVERRIDE_DECODERS = {
    "page_policy": lambda v: _decode_page_policy(v),
    "interleaving": str,
    "timing_model": str,
    "arrival_cpi": float,
}


def _decode_page_policy(value: str) -> PagePolicy:
    try:
        return PagePolicy[str(value).upper()]
    except KeyError:
        raise ValueError(
            f"unknown page policy {value!r}; known policies: "
            + ", ".join(p.name.lower() for p in PagePolicy))


@dataclass
class FuzzCase:
    """One materialized fuzz spec, ready to simulate."""

    label: str
    scenario: Scenario
    config: SystemConfig
    seed: int
    warmup_fraction: float
    chunk_size: int
    #: When set, the oracle drives every cell through the feedback-driven
    #: :class:`~repro.scenario.closed_loop.ClosedLoopSource`.
    closed_loop: Optional[ClosedLoopSpec] = None

    @property
    def total_accesses(self) -> int:
        return self.scenario.total_accesses

    @property
    def warmup_accesses(self) -> int:
        return int(self.total_accesses * self.warmup_fraction)


def _config_factories():
    factories = dict(named_configs())
    factories.update(extended_configs())
    return factories


def materialize(spec: Dict) -> FuzzCase:
    """Build the live scenario/configuration a spec describes.

    Raises ``ValueError`` for malformed specs (wrong format version, unknown
    workload/configuration names, override values the constructors reject) --
    the shrinker relies on this to discard invalid mutations.
    """
    version = spec.get("format")
    if version != SPEC_FORMAT_VERSION:
        raise ValueError(
            f"fuzz spec format v{version!r} is not supported by this build "
            f"(expected v{SPEC_FORMAT_VERSION})")
    label = str(spec.get("label", "fuzz"))

    scenario_spec = spec["scenario"]
    phases: List[Phase] = []
    for index, phase_spec in enumerate(scenario_spec["phases"]):
        tenants = [
            TenantAssignment(
                workload=str(tenant["workload"]),
                cores=tuple(int(core) for core in tenant["cores"]),
                intensity=float(tenant.get("intensity", 1.0)),
            )
            for tenant in phase_spec["tenants"]
        ]
        bursts = tuple(
            Burst(float(start), float(stop), float(intensity))
            for start, stop, intensity in phase_spec.get("bursts", ()))
        phases.append(Phase(
            name=str(phase_spec.get("name", f"phase{index}")),
            accesses=int(phase_spec["accesses"]),
            tenants=tenants,
            intensity=float(phase_spec.get("intensity", 1.0)),
            bursts=bursts,
        ))
    try:
        # seed_stream is pinned so the display label never leaks into trace
        # generation (Scenario defaults seed_stream to its name): a shrunk or
        # promoted reproducer replays the identical trace after relabeling.
        scenario = Scenario(
            name=label,
            description="fuzz-generated scenario",
            phases=phases,
            num_cores=int(scenario_spec["num_cores"]),
            seed_stream="fuzz-spec",
        )
    except KeyError as exc:
        raise ValueError(f"fuzz spec scenario is missing field {exc}")

    config_spec = spec.get("config", {})
    base = str(config_spec.get("base", "base_open"))
    factories = _config_factories()
    if base not in factories:
        raise ValueError(
            f"unknown base configuration {base!r}; known: "
            + ", ".join(sorted(factories)))
    config = factories[base]
    overrides = {}
    for key, raw in (config_spec.get("overrides") or {}).items():
        decoder = _OVERRIDE_DECODERS.get(key)
        if decoder is None:
            raise ValueError(
                f"unsupported configuration override {key!r}; supported: "
                + ", ".join(sorted(_OVERRIDE_DECODERS)))
        overrides[key] = decoder(raw)
    if overrides:
        config = config.with_overrides(**overrides)

    warmup_fraction = float(spec.get("warmup_fraction", 0.5))
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    chunk_size = int(spec.get("chunk_size", 512))
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    try:
        closed_loop = as_closed_loop_spec(spec.get("closed_loop"))
    except TypeError as exc:
        raise ValueError(str(exc))
    return FuzzCase(
        label=label,
        scenario=scenario,
        config=config,
        seed=int(spec.get("seed", 42)),
        warmup_fraction=warmup_fraction,
        chunk_size=chunk_size,
        closed_loop=closed_loop,
    )


def spec_fingerprint(spec: Dict) -> str:
    """Content digest of a spec (label excluded -- labels are display only)."""
    data = {key: value for key, value in spec.items() if key != "label"}
    return fingerprint(data)


def save_spec(spec: Dict, path) -> Path:
    """Write a spec as a formatted, key-sorted JSON artifact."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(spec, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_spec(path) -> Dict:
    """Read one spec artifact, failing loudly on malformed JSON."""
    path = Path(path)
    try:
        spec = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"corrupt fuzz spec {path}: {exc}")
    if not isinstance(spec, dict):
        raise ValueError(f"corrupt fuzz spec {path}: expected a JSON object")
    version = spec.get("format")
    if version != SPEC_FORMAT_VERSION:
        raise ValueError(
            f"fuzz spec {path} has format v{version!r}; this build expects "
            f"v{SPEC_FORMAT_VERSION}")
    return spec


def corpus_paths(directory) -> List[Path]:
    """The replayable spec artifacts under ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))
