"""Content fingerprints for dataclass-shaped configuration objects.

The canonical reduction below is the common currency of every content
address in the package: the campaign engine keys its on-disk artifacts with
it (:mod:`repro.exec.jobs`), the runner keys its in-process trace cache with
it, and the parity guard compares full :class:`SimulationResult` bundles
through it.  It lives in :mod:`repro.common` so both the execution layer and
the simulation layer can use it without importing each other.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum


def canonical_data(obj):
    """Reduce ``obj`` to plain JSON-serialisable data, deterministically.

    Dataclasses become sorted field dictionaries, enums their values, tuples
    lists, and objects exposing ``snapshot()`` (e.g. ``StatGroup``) their
    counter dictionaries.  The reduction is the common currency of every
    fingerprint in this package, so it must stay stable across processes and
    interpreter runs.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonical_data(getattr(obj, f.name))
            for f in sorted(dataclasses.fields(obj), key=lambda f: f.name)
        }
    if isinstance(obj, Enum):
        return canonical_data(obj.value)
    if isinstance(obj, dict):
        return {str(key): canonical_data(value) for key, value in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [canonical_data(item) for item in obj]
    if hasattr(obj, "snapshot") and callable(obj.snapshot):
        return canonical_data(obj.snapshot())
    if isinstance(obj, float):
        # repr() round-trips doubles exactly, unlike str() on old interpreters.
        return float(repr(obj)) if obj == obj else "nan"
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    return repr(obj)


def fingerprint(obj) -> str:
    """Hex digest of the canonical reduction of ``obj`` (first 16 bytes of SHA-256)."""
    payload = json.dumps(canonical_data(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def workload_fingerprint(spec) -> str:
    """Content fingerprint of a :class:`repro.workloads.spec.WorkloadSpec`."""
    return fingerprint(spec)
