"""Deterministic random-number helpers.

All stochastic choices in the workload generators flow through a
:class:`numpy.random.Generator` seeded from an experiment-level seed plus a
stable per-purpose stream id, so that every figure and table of the paper is
regenerated bit-identically run after run, and so that changing one workload
knob does not silently perturb another workload's trace.
"""

from __future__ import annotations

import hashlib

import numpy as np


def seeded_generator(seed: int, stream: str = "") -> np.random.Generator:
    """Return a generator seeded from ``seed`` and a named ``stream``.

    The stream name is hashed into the seed so that, e.g., the "web_search"
    and "data_serving" generators built from the same experiment seed produce
    independent sequences.
    """
    if stream:
        digest = hashlib.sha256(stream.encode("utf-8")).digest()
        stream_seed = int.from_bytes(digest[:8], "little")
    else:
        stream_seed = 0
    return np.random.default_rng((seed & 0xFFFFFFFF) ^ stream_seed)


def zipf_weights(n: int, skew: float) -> np.ndarray:
    """Return normalised Zipf-like popularity weights for ``n`` items.

    Server datasets (popular keys, hot rows, frequent query terms) follow
    heavy-tailed popularity; the generators use these weights to pick which
    coarse-grained object or hash bucket an operation touches.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-skew) if skew > 0 else np.ones(n, dtype=np.float64)
    return weights / weights.sum()
