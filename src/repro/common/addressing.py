"""Address arithmetic used across the simulator.

The paper works with three granularities:

* the 64-byte cache *block*, the unit of transfer between the LLC and DRAM;
* the 1-kilobyte *region*, the unit at which BuMP tracks access density and
  triggers bulk transfers (Section IV.D of the paper);
* the 8-kilobyte DRAM *row* (page), the unit of activation inside a bank.

All helpers below operate on plain integers holding physical byte addresses.
They are deliberately free functions (not methods of an address class) so the
hot simulation loops pay no object-construction cost.
"""

from __future__ import annotations

BLOCK_BITS = 6
BLOCK_SIZE = 1 << BLOCK_BITS

REGION_BITS = 10
REGION_SIZE = 1 << REGION_BITS

BLOCKS_PER_REGION = REGION_SIZE // BLOCK_SIZE

_OFFSET_BITS = REGION_BITS - BLOCK_BITS
_OFFSET_MASK = BLOCKS_PER_REGION - 1


def block_address(addr: int) -> int:
    """Return the block-aligned address containing byte address ``addr``."""
    return addr & ~(BLOCK_SIZE - 1)


def block_offset(addr: int) -> int:
    """Return the byte offset of ``addr`` inside its cache block."""
    return addr & (BLOCK_SIZE - 1)


def region_address(addr: int) -> int:
    """Return the region number of byte address ``addr``.

    The region number is the physical address shifted right by the region
    offset bits, exactly as the RDTT indexes its tables (Section IV.B).
    """
    return addr >> REGION_BITS


def region_base(addr: int) -> int:
    """Return the byte address of the first block of ``addr``'s region."""
    return addr & ~(REGION_SIZE - 1)


def block_index_in_region(addr: int) -> int:
    """Return the block index (0..15 for 1KB regions) of ``addr`` in its region.

    This index is the *offset* that BuMP appends to the triggering PC when
    indexing the Bulk History Table.
    """
    return (addr >> BLOCK_BITS) & _OFFSET_MASK


def region_offset_bits(region_size: int = REGION_SIZE, block_size: int = BLOCK_SIZE) -> int:
    """Number of bits needed to name a block within a region.

    For the paper's default 1KB region and 64B blocks this is 4 bits.
    """
    if region_size % block_size != 0:
        raise ValueError("region size must be a multiple of the block size")
    blocks = region_size // block_size
    if blocks & (blocks - 1) != 0:
        raise ValueError("blocks per region must be a power of two")
    return blocks.bit_length() - 1


def blocks_of_region(region: int, region_size: int = REGION_SIZE,
                     block_size: int = BLOCK_SIZE) -> list:
    """Return the block-aligned addresses of every block in ``region``.

    ``region`` is a region number (i.e. a byte address shifted right by the
    region bits for the given ``region_size``).
    """
    base = region * region_size
    return [base + i * block_size for i in range(region_size // block_size)]
