"""Architectural parameters of the simulated server (Table II of the paper).

Every structural knob of the evaluated system lives here as a frozen-ish
dataclass so experiments can copy a default configuration and override only
what they sweep (e.g. the BuMP region size in Figure 11).

The defaults reproduce the paper's 16-core lean-core CMP: 3-way out-of-order
cores at 2.5 GHz, 32KB split L1 caches, a shared 4MB 16-way LLC with a stride
prefetcher, a 16x8 crossbar NOC and two DDR3-1600 channels backing 16GB of
memory organised as 4 ranks per channel with 8 banks per rank and an 8KB row
buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class CoreParams:
    """Parameters of a single lean core (Table II, "Core" row)."""

    frequency_ghz: float = 2.5
    issue_width: int = 3
    rob_entries: int = 48
    lsq_entries: int = 48
    #: CPI of the core when every memory access hits on chip.  The analytic
    #: timing model charges this for every instruction and adds exposed
    #: off-chip stall cycles on top (see :mod:`repro.sim.timing`).
    base_cpi: float = 1.0
    #: Average number of overlapping outstanding off-chip misses the core can
    #: sustain.  Server applications have little memory-level parallelism
    #: within a thread (Section II.A): dependent pointer chases keep a
    #: 48-entry-ROB core from overlapping many misses.
    memory_level_parallelism: float = 1.5

    @property
    def cycle_time_ns(self) -> float:
        """Duration of one core clock cycle in nanoseconds."""
        return 1.0 / self.frequency_ghz


@dataclass
class CacheParams:
    """Geometry of one cache level."""

    size_bytes: int
    associativity: int
    block_size: int = 64
    hit_latency_cycles: int = 2
    #: Number of banks, used only for reporting (the trace-driven model does
    #: not simulate bank conflicts).
    banks: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.block_size) != 0:
            raise ValueError(
                "cache size must be a multiple of associativity * block size"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.size_bytes // (self.associativity * self.block_size)

    @property
    def num_blocks(self) -> int:
        """Total number of block frames in the cache."""
        return self.size_bytes // self.block_size


@dataclass
class DDR3Timing:
    """DDR3-1600 timing parameters in memory-bus clock cycles (Table II).

    The memory bus runs at 800 MHz (DDR3-1600 transfers on both edges), so one
    bus cycle is 1.25 ns.  A 64-byte cache block occupies the data bus for
    four bus cycles (burst length 8 over an 8-byte-wide channel).
    """

    tCAS: int = 11
    tRCD: int = 11
    tRP: int = 11
    tRAS: int = 28
    tRC: int = 39
    tWR: int = 12
    tWTR: int = 6
    tRTP: int = 6
    tRRD: int = 5
    tFAW: int = 24
    burst_cycles: int = 4
    clock_ns: float = 1.25

    @property
    def row_hit_latency(self) -> int:
        """Bus cycles from command issue to data for a row-buffer hit."""
        return self.tCAS + self.burst_cycles

    @property
    def row_miss_latency(self) -> int:
        """Bus cycles for an access that must first activate a closed row."""
        return self.tRCD + self.tCAS + self.burst_cycles

    @property
    def row_conflict_latency(self) -> int:
        """Bus cycles for an access that must close another row first."""
        return self.tRP + self.tRCD + self.tCAS + self.burst_cycles


@dataclass
class DRAMOrganization:
    """Physical organisation of main memory (Table II, "Main Memory" row)."""

    capacity_gib: int = 16
    channels: int = 2
    ranks_per_channel: int = 4
    banks_per_rank: int = 8
    row_buffer_bytes: int = 8192
    #: Peak bandwidth per channel in bytes per memory-bus cycle (8-byte bus,
    #: double data rate => 16 bytes per bus clock at 800 MHz = 12.8 GB/s).
    channel_bytes_per_cycle: int = 16
    transaction_queue_entries: int = 64
    command_queue_entries: int = 64

    @property
    def total_banks(self) -> int:
        """Number of independent banks across the whole memory system."""
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Aggregate peak bandwidth in GB/s (25.6 GB/s for the default)."""
        return self.channels * self.channel_bytes_per_cycle / DDR3Timing().clock_ns


@dataclass
class SystemParams:
    """Top-level description of the simulated CMP."""

    num_cores: int = 16
    core: CoreParams = field(default_factory=CoreParams)
    l1d: CacheParams = field(
        default_factory=lambda: CacheParams(
            size_bytes=32 * 1024, associativity=2, hit_latency_cycles=2
        )
    )
    llc: CacheParams = field(
        default_factory=lambda: CacheParams(
            size_bytes=4 * 1024 * 1024,
            associativity=16,
            hit_latency_cycles=8,
            banks=8,
        )
    )
    dram_timing: DDR3Timing = field(default_factory=DDR3Timing)
    dram_org: DRAMOrganization = field(default_factory=DRAMOrganization)
    #: Ratio of core clock to memory bus clock (2.5 GHz / 800 MHz).
    core_cycles_per_dram_cycle: float = 2.5 / 0.8
    noc_latency_cycles: int = 5

    def scaled(self, **overrides) -> "SystemParams":
        """Return a copy of this configuration with selected fields replaced."""
        return replace(self, **overrides)


DEFAULT_SYSTEM = SystemParams()
