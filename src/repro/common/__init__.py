"""Common infrastructure shared by every subsystem of the BuMP reproduction.

The :mod:`repro.common` package holds the pieces that do not belong to any
single microarchitectural component:

* :mod:`repro.common.params` -- the architectural parameters of Table II of
  the paper (cache geometry, DRAM organisation, DDR3 timing).
* :mod:`repro.common.request` -- the record types that flow through the
  simulator: processor-side accesses, LLC-side requests and DRAM commands.
* :mod:`repro.common.addressing` -- helpers for carving physical addresses
  into blocks, regions and DRAM coordinates.
* :mod:`repro.common.stats` -- lightweight named counters and histograms used
  by every component to expose measurements to the experiment harness.
* :mod:`repro.common.rng` -- deterministic random-number helpers so that every
  experiment is exactly reproducible.
"""

from repro.common.addressing import (
    BLOCK_BITS,
    BLOCK_SIZE,
    REGION_BITS,
    REGION_SIZE,
    BLOCKS_PER_REGION,
    block_address,
    block_index_in_region,
    block_offset,
    region_address,
    region_base,
    region_offset_bits,
)
from repro.common.params import (
    CacheParams,
    CoreParams,
    DDR3Timing,
    DRAMOrganization,
    SystemParams,
)
from repro.common.request import (
    Access,
    AccessType,
    DRAMCommandKind,
    DRAMRequest,
    DRAMRequestKind,
    LLCRequest,
)
from repro.common.stats import StatGroup

__all__ = [
    "BLOCK_BITS",
    "BLOCK_SIZE",
    "REGION_BITS",
    "REGION_SIZE",
    "BLOCKS_PER_REGION",
    "block_address",
    "block_index_in_region",
    "block_offset",
    "region_address",
    "region_base",
    "region_offset_bits",
    "CacheParams",
    "CoreParams",
    "DDR3Timing",
    "DRAMOrganization",
    "SystemParams",
    "Access",
    "AccessType",
    "DRAMCommandKind",
    "DRAMRequest",
    "DRAMRequestKind",
    "LLCRequest",
    "StatGroup",
]
