"""Set-associative predictor table.

BuMP's trigger, density, bulk-history and dirty-region tables, as well as the
SMS pattern tables, are all small set-associative SRAM structures with LRU
replacement.  :class:`AssociativeTable` models exactly that: a bounded
key-value store organised as ``entries / associativity`` sets, where
insertion into a full set evicts the least-recently-used entry of that set
and reports the eviction to the caller (BuMP uses such conflict evictions as
region terminations).
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class AssociativeTable(Generic[K, V]):
    """A bounded set-associative table with LRU replacement per set."""

    def __init__(self, entries: int, associativity: int, name: str = "table") -> None:
        if entries <= 0 or associativity <= 0:
            raise ValueError("entries and associativity must be positive")
        if entries % associativity != 0:
            raise ValueError("entries must be a multiple of associativity")
        self.name = name
        self.entries = entries
        self.associativity = associativity
        self.num_sets = entries // associativity
        self._sets: List[Dict[K, V]] = [dict() for _ in range(self.num_sets)]
        self.lookups = 0
        self.hits = 0
        self.insertions = 0
        self.conflict_evictions = 0

    def _set_for(self, key: K) -> Dict[K, V]:
        return self._sets[hash(key) % self.num_sets]

    def lookup(self, key: K, touch: bool = True) -> Optional[V]:
        """Return the value stored under ``key`` or ``None``.

        ``touch`` promotes the entry to most-recently-used on a hit.
        """
        self.lookups += 1
        # _set_for inlined: predictor lookups run once per LLC access.
        table_set = self._sets[hash(key) % self.num_sets]
        value = table_set.get(key)
        if value is None:
            return None
        self.hits += 1
        if touch:
            del table_set[key]
            table_set[key] = value
        return value

    def contains(self, key: K) -> bool:
        """Presence check that does not perturb LRU order or statistics."""
        return key in self._set_for(key)

    def insert(self, key: K, value: V) -> Optional[Tuple[K, V]]:
        """Insert or update ``key``; return the evicted (key, value) if any."""
        self.insertions += 1
        table_set = self._set_for(key)
        if key in table_set:
            del table_set[key]
            table_set[key] = value
            return None
        victim: Optional[Tuple[K, V]] = None
        if len(table_set) >= self.associativity:
            victim_key = next(iter(table_set))
            victim = (victim_key, table_set.pop(victim_key))
            self.conflict_evictions += 1
        table_set[key] = value
        return victim

    def remove(self, key: K) -> Optional[V]:
        """Remove ``key`` and return its value, or ``None`` when absent."""
        return self._set_for(key).pop(key, None)

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def __iter__(self) -> Iterator[Tuple[K, V]]:
        for table_set in self._sets:
            yield from table_set.items()

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups that found their key."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups
