"""Record types that flow between simulator components.

Three layers of the memory system exchange three kinds of records:

* :class:`Access` -- a processor-side memory reference produced by the
  workload generators: a program counter, a byte address and whether the
  instruction is a load or a store.
* :class:`LLCRequest` -- a block-granular request arriving at the shared LLC
  after the private L1 filter, still carrying the triggering PC (the paper
  extends L1-to-LLC requests with the PC so BuMP and SMS can correlate code
  with data).
* :class:`DRAMRequest` -- a block transfer between the LLC and main memory,
  tagged with the reason it was generated (demand miss, prefetch, bulk read,
  demand writeback, eager/bulk writeback) so the experiment harness can
  attribute traffic, coverage and overfetch.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, IntEnum


class AccessType(IntEnum):
    """Kind of processor memory reference."""

    LOAD = 0
    STORE = 1


@dataclass
class Access:
    """One processor-side memory reference emitted by a workload generator."""

    core: int
    pc: int
    address: int
    type: AccessType = AccessType.LOAD
    #: Number of instructions the core executed since its previous memory
    #: reference; drives the analytic timing model.
    instructions: int = 1

    @property
    def is_store(self) -> bool:
        """True when the access was produced by a store instruction."""
        return self.type == AccessType.STORE


class LLCRequestKind(Enum):
    """Why a block-granular request reached the LLC."""

    DEMAND_READ = "demand_read"
    DEMAND_WRITE = "demand_write"
    PREFETCH = "prefetch"
    BULK_READ = "bulk_read"
    WRITEBACK_PROBE = "writeback_probe"


class LLCRequest:
    """A block request at the shared LLC, carrying prediction metadata.

    A plain ``__slots__`` class: one is built per post-L1 demand access on
    the simulator hot path.
    """

    __slots__ = ("core", "pc", "block_address", "kind", "is_store")

    def __init__(self, core: int, pc: int, block_address: int,
                 kind: LLCRequestKind, is_store: bool = False) -> None:
        self.core = core
        self.pc = pc
        self.block_address = block_address
        self.kind = kind
        self.is_store = is_store

    def __eq__(self, other) -> bool:
        if not isinstance(other, LLCRequest):
            return NotImplemented
        return (self.core == other.core and self.pc == other.pc
                and self.block_address == other.block_address
                and self.kind == other.kind and self.is_store == other.is_store)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LLCRequest(core={self.core}, pc={self.pc}, "
                f"block_address=0x{self.block_address:x}, kind={self.kind}, "
                f"is_store={self.is_store})")


class DRAMRequestKind(Enum):
    """Provenance of a DRAM transfer; used for coverage/overfetch accounting."""

    DEMAND_READ = "demand_read"
    PREFETCH_READ = "prefetch_read"
    BULK_READ = "bulk_read"
    DEMAND_WRITEBACK = "demand_writeback"
    EAGER_WRITEBACK = "eager_writeback"
    BULK_WRITEBACK = "bulk_writeback"

    @property
    def is_read(self) -> bool:
        """True for transfers that move data from DRAM to the chip."""
        return self in (
            DRAMRequestKind.DEMAND_READ,
            DRAMRequestKind.PREFETCH_READ,
            DRAMRequestKind.BULK_READ,
        )

    @property
    def is_write(self) -> bool:
        """True for transfers that move data from the chip to DRAM."""
        return not self.is_read

    @property
    def is_demand(self) -> bool:
        """True for transfers directly required by the running program."""
        return self in (
            DRAMRequestKind.DEMAND_READ,
            DRAMRequestKind.DEMAND_WRITEBACK,
        )


# Scheduling and accounting run once per DRAM transfer, and Enum's
# Python-level ``__hash__``/property machinery is measurably slow there.
# Each kind carries a small integer ``code`` so hot paths can classify with
# one attribute load and a tuple index instead of enum dict lookups.
for _code, _kind in enumerate(DRAMRequestKind):
    _kind.code = _code

#: ``KIND_IS_READ[kind.code]`` / ``KIND_IS_DEMAND[kind.code]`` fast tables.
KIND_IS_READ = tuple(kind.is_read for kind in DRAMRequestKind)
KIND_IS_DEMAND = tuple(kind.is_demand for kind in DRAMRequestKind)


class DRAMCommandKind(Enum):
    """Low-level DRAM commands issued by the memory controller."""

    ACTIVATE = "activate"
    READ = "read"
    WRITE = "write"
    PRECHARGE = "precharge"


class DRAMRequest:
    """One 64-byte transfer between the LLC and main memory.

    A plain ``__slots__`` class (one is allocated per transfer on the
    simulator hot path).  Equality compares the identity fields only --
    ``row_hit`` and ``latency_cycles`` are measurement outputs, matching the
    ``compare=False`` semantics of the original dataclass.
    """

    __slots__ = ("block_address", "kind", "core", "pc", "arrival_cycle",
                 "row_hit", "latency_cycles")

    def __init__(self, block_address: int, kind: DRAMRequestKind, core: int = 0,
                 pc: int = 0, arrival_cycle: float = 0.0) -> None:
        self.block_address = block_address
        self.kind = kind
        self.core = core
        self.pc = pc
        #: Core-clock cycle at which the request became visible to the memory
        #: controller.  Filled in by the system model.
        self.arrival_cycle = arrival_cycle
        #: Set by the memory controller: whether the column access hit in an
        #: already-open row buffer.
        self.row_hit = False
        #: Set by the memory controller: total latency in memory-bus cycles
        #: from arrival to completion (queueing + bank timing + burst).
        self.latency_cycles = 0.0

    def __eq__(self, other) -> bool:
        if not isinstance(other, DRAMRequest):
            return NotImplemented
        return (self.block_address == other.block_address
                and self.kind == other.kind
                and self.core == other.core
                and self.pc == other.pc
                and self.arrival_cycle == other.arrival_cycle)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DRAMRequest(block_address=0x{self.block_address:x}, "
                f"kind={self.kind}, core={self.core}, pc={self.pc}, "
                f"arrival_cycle={self.arrival_cycle})")

    @property
    def is_read(self) -> bool:
        """True when the transfer moves data from DRAM toward the chip."""
        return self.kind.is_read

    @property
    def is_write(self) -> bool:
        """True when the transfer moves data from the chip into DRAM."""
        return self.kind.is_write
