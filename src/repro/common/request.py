"""Record types that flow between simulator components.

Three layers of the memory system exchange three kinds of records:

* :class:`Access` -- a processor-side memory reference produced by the
  workload generators: a program counter, a byte address and whether the
  instruction is a load or a store.
* :class:`LLCRequest` -- a block-granular request arriving at the shared LLC
  after the private L1 filter, still carrying the triggering PC (the paper
  extends L1-to-LLC requests with the PC so BuMP and SMS can correlate code
  with data).
* :class:`DRAMRequest` -- a block transfer between the LLC and main memory,
  tagged with the reason it was generated (demand miss, prefetch, bulk read,
  demand writeback, eager/bulk writeback) so the experiment harness can
  attribute traffic, coverage and overfetch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntEnum


class AccessType(IntEnum):
    """Kind of processor memory reference."""

    LOAD = 0
    STORE = 1


@dataclass
class Access:
    """One processor-side memory reference emitted by a workload generator."""

    core: int
    pc: int
    address: int
    type: AccessType = AccessType.LOAD
    #: Number of instructions the core executed since its previous memory
    #: reference; drives the analytic timing model.
    instructions: int = 1

    @property
    def is_store(self) -> bool:
        """True when the access was produced by a store instruction."""
        return self.type == AccessType.STORE


class LLCRequestKind(Enum):
    """Why a block-granular request reached the LLC."""

    DEMAND_READ = "demand_read"
    DEMAND_WRITE = "demand_write"
    PREFETCH = "prefetch"
    BULK_READ = "bulk_read"
    WRITEBACK_PROBE = "writeback_probe"


@dataclass
class LLCRequest:
    """A block request at the shared LLC, carrying prediction metadata."""

    core: int
    pc: int
    block_address: int
    kind: LLCRequestKind
    is_store: bool = False


class DRAMRequestKind(Enum):
    """Provenance of a DRAM transfer; used for coverage/overfetch accounting."""

    DEMAND_READ = "demand_read"
    PREFETCH_READ = "prefetch_read"
    BULK_READ = "bulk_read"
    DEMAND_WRITEBACK = "demand_writeback"
    EAGER_WRITEBACK = "eager_writeback"
    BULK_WRITEBACK = "bulk_writeback"

    @property
    def is_read(self) -> bool:
        """True for transfers that move data from DRAM to the chip."""
        return self in (
            DRAMRequestKind.DEMAND_READ,
            DRAMRequestKind.PREFETCH_READ,
            DRAMRequestKind.BULK_READ,
        )

    @property
    def is_write(self) -> bool:
        """True for transfers that move data from the chip to DRAM."""
        return not self.is_read

    @property
    def is_demand(self) -> bool:
        """True for transfers directly required by the running program."""
        return self in (
            DRAMRequestKind.DEMAND_READ,
            DRAMRequestKind.DEMAND_WRITEBACK,
        )


class DRAMCommandKind(Enum):
    """Low-level DRAM commands issued by the memory controller."""

    ACTIVATE = "activate"
    READ = "read"
    WRITE = "write"
    PRECHARGE = "precharge"


@dataclass
class DRAMRequest:
    """One 64-byte transfer between the LLC and main memory."""

    block_address: int
    kind: DRAMRequestKind
    core: int = 0
    pc: int = 0
    #: Core-clock cycle at which the request became visible to the memory
    #: controller.  Filled in by the system model.
    arrival_cycle: float = 0.0
    #: Set by the memory controller: whether the column access hit in an
    #: already-open row buffer.
    row_hit: bool = field(default=False, compare=False)
    #: Set by the memory controller: total latency in memory-bus cycles from
    #: arrival to completion (queueing + bank timing + burst).
    latency_cycles: float = field(default=0.0, compare=False)

    @property
    def is_read(self) -> bool:
        """True when the transfer moves data from DRAM toward the chip."""
        return self.kind.is_read

    @property
    def is_write(self) -> bool:
        """True when the transfer moves data from the chip into DRAM."""
        return self.kind.is_write
