"""Lightweight statistics collection.

Every component of the simulator exposes its measurements through a
:class:`StatGroup`: a named collection of counters and accumulators that the
experiment harness can snapshot, diff and merge.  Keeping the interface tiny
(increment, add, ratio) keeps the hot loops cheap while still letting the
benchmark harness assemble the exact rows the paper's figures report.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping


class StatGroup:
    """A named bag of floating-point counters.

    Counters spring into existence at zero on first use, so components never
    need to pre-declare them.  Names are free-form strings; by convention they
    are lowercase with underscores (``"row_hits"``, ``"demand_reads"``).
    """

    def __init__(self, name: str = "stats") -> None:
        self.name = name
        self._counters: Dict[str, float] = defaultdict(float)

    def inc(self, key: str, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to counter ``key``."""
        self._counters[key] += amount

    def set(self, key: str, value: float) -> None:
        """Overwrite counter ``key`` with ``value``."""
        self._counters[key] = value

    def get(self, key: str, default: float = 0.0) -> float:
        """Return counter ``key`` or ``default`` when it was never touched."""
        return self._counters.get(key, default)

    def __getitem__(self, key: str) -> float:
        return self._counters.get(key, 0.0)

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def ratio(self, numerator: str, denominator: str) -> float:
        """Return ``numerator / denominator``, or 0.0 when the denominator is 0."""
        denom = self._counters.get(denominator, 0.0)
        if denom == 0:
            return 0.0
        return self._counters.get(numerator, 0.0) / denom

    def merge(self, other: "StatGroup") -> None:
        """Accumulate every counter of ``other`` into this group."""
        for key, value in other._counters.items():
            self._counters[key] += value

    def update(self, values: Mapping[str, float]) -> None:
        """Accumulate every entry of a plain mapping into this group."""
        for key, value in values.items():
            self._counters[key] += value

    def snapshot(self) -> Dict[str, float]:
        """Return a plain-dict copy of the current counter values."""
        return dict(self._counters)

    def reset(self, keys: Iterable[str] = ()) -> None:
        """Zero the listed counters, or every counter when none are listed.

        Listed counters are zeroed *in place*: a counter that existed before
        the reset still reports as touched (``key in group`` stays true and
        ``keys()`` still lists it), it just reads 0.  Counters that were never
        touched are not created.
        """
        if keys:
            for key in keys:
                if key in self._counters:
                    self._counters[key] = 0.0
        else:
            self._counters.clear()

    def keys(self) -> Iterable[str]:
        """Iterate over the names of all counters that have been touched."""
        return self._counters.keys()

    def as_dict(self) -> Dict[str, float]:
        """Alias of :meth:`snapshot` for symmetry with dataclass interfaces."""
        return self.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counters.items()))
        return f"StatGroup({self.name}: {body})"
