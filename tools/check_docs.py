#!/usr/bin/env python3
"""Documentation checks, run by the CI docs job.

Two checks over README.md and every Markdown file under ``docs/``:

1. **Intra-repo links** -- every ``[text](target)`` whose target is not an
   external URL or a pure anchor must resolve to an existing file or
   directory, relative to the file containing the link.
2. **Runnable examples** -- every fenced ``pycon`` code block is executed
   with :mod:`doctest`, so the documented interpreter transcripts cannot
   drift from the actual API.  (Plain ``python`` fences are prose
   illustrations and are not executed.)

No third-party dependencies; run from anywhere::

    PYTHONPATH=src python tools/check_docs.py

Exit status is zero when every link resolves and every doctest passes.
"""

from __future__ import annotations

import doctest
import io
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` -- target captured up to the first whitespace or ')'.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Fenced ``pycon`` blocks (the executable interpreter transcripts).
_PYCON_FENCE = re.compile(r"^```pycon\n(.*?)^```", re.DOTALL | re.MULTILINE)
#: Link targets that are not filesystem paths.
_EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("**/*.md")))
    return [path for path in files if path.exists()]


def check_links(path: Path, text: str) -> "Tuple[List[str], int]":
    """(errors, links checked) for every intra-repo link in ``text``."""
    errors = []
    checked = 0
    for match in _LINK.finditer(text):
        checked += 1
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            errors.append(f"{path.relative_to(REPO_ROOT)}:{line}: "
                          f"broken link -> {target}")
    return errors, checked


def run_doctests(path: Path, text: str) -> "Tuple[List[str], int]":
    """(failure reports, blocks executed) for every ``pycon`` fence."""
    errors = []
    blocks = 0
    parser = doctest.DocTestParser()
    for index, match in enumerate(_PYCON_FENCE.finditer(text)):
        blocks += 1
        line = text.count("\n", 0, match.start()) + 1
        name = f"{path.relative_to(REPO_ROOT)}[pycon #{index + 1} @ line {line}]"
        test = parser.get_doctest(match.group(1), {}, name, str(path), line)
        if not test.examples:
            continue
        output = io.StringIO()
        runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS)
        runner.run(test, out=output.write)
        results = runner.summarize(verbose=False)
        if results.failed:
            errors.append(f"{name}: {results.failed} of "
                          f"{results.attempted} example(s) failed\n"
                          + output.getvalue().rstrip())
    return errors, blocks


def main() -> int:
    files = doc_files()
    errors: List[str] = []
    checked_links = 0
    checked_blocks = 0
    for path in files:
        text = path.read_text(encoding="utf-8")
        link_errors, links = check_links(path, text)
        errors.extend(link_errors)
        checked_links += links
        doctest_errors, blocks = run_doctests(path, text)
        errors.extend(doctest_errors)
        checked_blocks += blocks
    for error in errors:
        print(f"FAIL: {error}", file=sys.stderr)
    print(f"checked {len(files)} file(s), {checked_links} link(s), "
          f"{checked_blocks} pycon block(s): "
          f"{'FAILED' if errors else 'ok'}")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
