"""Ablation: BuMP structure sizing and timing-model sensitivity.

Section V.B observes that Software Testing is limited by RDTT capacity and
that a 2048-entry RDTT recovers most of the lost coverage; Section IV.D
chooses 1024-entry BHT/DRT tables.  These sweeps regenerate the trade-off on
a workload subset that includes Software Testing.  The timing-model study
checks that BuMP's speedup claim survives replacing the fixed-MLP analytic
core model with the ROB/MSHR-derived interval model.
"""

from conftest import bench_workers, run_once

from repro.analysis.ablations import (
    predictor_table_sizing,
    rdtt_sizing,
    timing_model_sensitivity,
)
from repro.analysis.reporting import format_nested_mapping, print_report

SIZING_WORKLOADS = ["software_testing", "web_search"]
TIMING_WORKLOADS = ["data_serving", "media_streaming", "web_search"]


def test_rdtt_sizing(benchmark, workloads):
    selected = [name for name in workloads if name in SIZING_WORKLOADS] or workloads
    table = run_once(benchmark, rdtt_sizing, (64, 256, 2048), selected,
                     workers=bench_workers())

    rendered = {f"{entries} entries": row for entries, row in table.items()}
    print_report(format_nested_mapping(
        rendered, value_format="{:.3f}",
        title="BuMP read coverage vs RDTT trigger/density table size",
        columns=["read_coverage", "read_overfetch"]))

    # Section IV.D / V.B: the chosen 256-entry geometry captures most of the
    # coverage any RDTT size reaches (it behaves close to an unbounded table).
    best = max(row["read_coverage"] for row in table.values())
    assert table[256]["read_coverage"] >= 0.7 * best
    for entries, row in table.items():
        assert 0.0 <= row["read_coverage"] <= 1.0, entries
        assert row["read_overfetch"] >= 0.0, entries


def test_predictor_table_sizing(benchmark, workloads):
    selected = [name for name in workloads if name in SIZING_WORKLOADS] or workloads
    table = run_once(benchmark, predictor_table_sizing, (128, 1024), selected,
                     workers=bench_workers())

    rendered = {f"{entries} entries": row for entries, row in table.items()}
    print_report(format_nested_mapping(
        rendered, value_format="{:.3f}",
        title="BuMP coverage vs BHT/DRT size",
        columns=["read_coverage", "write_coverage", "extra_writebacks"]))

    # A larger BHT/DRT never loses write coverage on the same trace; the
    # extra-writeback column is reported (the paper quotes <10% at the chosen
    # size) but not asserted because its denominator -- the baseline's demand
    # writebacks -- is very sensitive to trace length.
    assert table[1024]["write_coverage"] >= table[128]["write_coverage"] - 0.02
    for row in table.values():
        assert row["extra_writebacks"] >= 0.0
        assert 0.0 <= row["read_coverage"] <= 1.0


def test_timing_model_sensitivity(benchmark, workloads):
    selected = [name for name in workloads if name in TIMING_WORKLOADS] or workloads
    table = run_once(benchmark, timing_model_sensitivity, selected,
                     workers=bench_workers())

    print_report(format_nested_mapping(
        table, value_format="{:+.3f}",
        title="BuMP speedup over Base-open under both core timing models",
        columns=["bump_speedup_over_base_open"]))

    # The performance claim does not hinge on the fixed-MLP assumption:
    # BuMP does not lose performance under either model.
    for model, row in table.items():
        assert row["bump_speedup_over_base_open"] > -0.05, model
