"""Ablation: read-side and write-side mechanism comparisons (Section VII).

Two comparisons the paper makes in prose are regenerated here over a subset
of workloads:

* the read side -- next-line, stride, Stealth-style region prefetching, SMS
  and BuMP, compared on coverage, overfetch and row-buffer locality;
* the write side -- demand-only writeback, age-based eager writeback, VWQ,
  BuMP and BuMP+VWQ (footnote 1), compared on write coverage and row-buffer
  locality.

A three-workload subset keeps the added simulation cost modest; the subset
spans the behaviours that differentiate the mechanisms (streaming-heavy
Media Streaming, pointer-heavy Data Serving, mixed Web Search).
"""

from conftest import bench_workers, run_once

from repro.analysis.ablations import prefetcher_comparison, writeback_mechanism_study
from repro.analysis.reporting import format_nested_mapping, print_report

ABLATION_WORKLOADS = ["data_serving", "media_streaming", "web_search"]


def test_prefetcher_comparison(benchmark, workloads):
    selected = [name for name in workloads if name in ABLATION_WORKLOADS] or workloads
    table = run_once(benchmark, prefetcher_comparison, selected,
                     workers=bench_workers())

    print_report(format_nested_mapping(
        table, value_format="{:.3f}",
        title="Read-side mechanisms: coverage / overfetch / row-buffer locality",
        columns=["read_coverage", "read_overfetch", "row_buffer_hit_ratio"]))

    # Bulk streaming turns whole-region fetches into row hits, so BuMP's
    # row-buffer locality tops every read-side alternative.
    for name in ("nextline", "stride", "stealth", "sms"):
        assert (table["bump"]["row_buffer_hit_ratio"]
                >= table[name]["row_buffer_hit_ratio"] - 0.02), name
    # Against SMS -- the state-of-the-art footprint prefetcher -- BuMP reaches
    # at least comparable read coverage (the paper credits its performance
    # edge over SMS to higher coverage).
    assert table["bump"]["read_coverage"] >= table["sms"]["read_coverage"] - 0.05
    # Every mechanism's overfetch stays finite and non-negative.
    for name, entry in table.items():
        assert entry["read_overfetch"] >= 0.0, name


def test_writeback_mechanism_study(benchmark, workloads):
    selected = [name for name in workloads if name in ABLATION_WORKLOADS] or workloads
    table = run_once(benchmark, writeback_mechanism_study, selected,
                     workers=bench_workers())

    print_report(format_nested_mapping(
        table, value_format="{:.3f}",
        title="Write-side mechanisms: write coverage / row-buffer locality",
        columns=["write_coverage", "row_buffer_hit_ratio", "dram_writes"]))

    # Demand-only writeback streams nothing; every eager mechanism streams some.
    assert table["base_open"]["write_coverage"] == 0.0
    assert table["vwq"]["write_coverage"] > 0.0
    assert table["bump"]["write_coverage"] > 0.0
    # Combining BuMP with VWQ (footnote 1) never reduces write coverage.
    assert table["bump_vwq"]["write_coverage"] >= table["bump"]["write_coverage"] - 0.02
    # Row-buffer locality ordering mirrors Figure 13: BuMP above VWQ above the
    # demand-only baseline, because VWQ only coalesces a few adjacent blocks
    # while BuMP streams whole regions.
    assert (table["bump"]["row_buffer_hit_ratio"]
            > table["vwq"]["row_buffer_hit_ratio"]
            > table["base_open"]["row_buffer_hit_ratio"])
