"""Table IV -- BuMP's DRAM row-buffer hit ratio per workload.

The paper reports per-workload hit ratios between 34% (Software Testing,
whose huge number of simultaneously active regions overwhelms the RDTT) and
64% (Media Streaming, the most sequential workload), averaging 55%.  This
benchmark regenerates the table.
"""

from conftest import run_once

from repro.analysis import paper_data
from repro.analysis.experiments import table4_bump_row_hits
from repro.analysis.reporting import format_comparison, print_report


def test_table4_bump_row_hit_ratio(benchmark, workloads):
    measured = run_once(benchmark, table4_bump_row_hits, workloads)

    print_report(format_comparison(
        measured,
        {k: paper_data.TABLE4_BUMP_ROW_HITS.get(k, float("nan")) for k in measured},
        title="Table IV: BuMP DRAM row-buffer hit ratio",
    ))

    for workload, value in measured.items():
        assert 0.30 < value < 0.85, f"BuMP row-hit ratio out of range for {workload}"

    average = sum(measured.values()) / len(measured)
    # Paper average is 55%; require the same ballpark.
    assert 0.40 < average < 0.75
    if {"media_streaming", "software_testing"} <= set(measured):
        # Media Streaming is the best case, Software Testing the worst.
        assert measured["media_streaming"] > measured["software_testing"]
