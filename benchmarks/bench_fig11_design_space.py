"""Figure 11 -- BuMP design space exploration.

The paper sweeps the region size (512B / 1KB / 2KB) and the high-density
threshold (25% / 50% / 75% / 100% of the region's blocks) and finds that a
1KB region with a 50% threshold maximises the memory-energy-per-access
improvement: smaller regions amortise fewer activations, larger regions and
lower thresholds overfetch, and a 100% threshold leaves too little traffic
eligible for bulk streaming.  This benchmark regenerates the sweep.

To keep the sweep tractable (12 BuMP configurations per workload) it runs at
half the default trace length; relative orderings are stable at that size.
"""

from conftest import run_once

from repro.analysis import paper_data
from repro.analysis.experiments import design_space_accesses, figure11_design_space
from repro.analysis.reporting import format_table, print_report

REGION_SIZES = (512, 1024, 2048)
THRESHOLDS = (0.25, 0.5, 0.75, 1.0)


def test_figure11_design_space(benchmark, workloads):
    sweep = run_once(
        benchmark, figure11_design_space, workloads,
        REGION_SIZES, THRESHOLDS, design_space_accesses(),
    )

    rows = []
    for region_size in REGION_SIZES:
        row = [str(region_size)]
        for threshold in THRESHOLDS:
            row.append(f"{sweep[(region_size, threshold)]:+.1%}")
        rows.append(row)
    print_report(
        "Figure 11: memory energy per access improvement over Base-open\n"
        + format_table(rows, headers=["region size (B)"]
                       + [f"thr {int(t * 100)}%" for t in THRESHOLDS])
    )

    # Every configuration with a selective threshold saves energy over the baseline.
    assert all(value > 0.0 for (size, thr), value in sweep.items() if thr >= 0.75)
    assert sweep[(1024, 0.5)] > 0.0
    best = max(sweep, key=sweep.get)
    # The paper's chosen design point (1KB, 50%) is optimal or statistically
    # indistinguishable from the best configuration found.
    chosen = sweep[(paper_data.BEST_REGION_SIZE, paper_data.BEST_DENSITY_THRESHOLD)]
    assert chosen >= sweep[best] - 0.05
    # The chosen point clearly beats the extreme corners of the sweep.
    assert chosen >= sweep[(512, 1.0)] - 0.02
