"""Table I -- blocks of a high-density region modified after its first dirty
LLC eviction.

The paper's bulk-writeback trigger is safe because, once the first dirty
block of a high-density modified region leaves the LLC, almost none of the
region's blocks are modified again (3-11% across workloads).  This benchmark
regenerates that per-workload fraction.
"""

from conftest import run_once

from repro.analysis import paper_data
from repro.analysis.experiments import table1_late_writes
from repro.analysis.reporting import format_comparison, print_report


def test_table1_late_writes(benchmark, workloads):
    measured = run_once(benchmark, table1_late_writes, workloads)

    print_report(format_comparison(
        measured,
        {k: paper_data.TABLE1_LATE_WRITES.get(k, float("nan")) for k in measured},
        title="Table I: fraction of a high-density region's blocks modified "
              "after its first dirty LLC eviction",
        value_format="{:.3f}",
    ))

    for workload, fraction in measured.items():
        # The property the mechanism relies on: late modifications are rare.
        assert 0.0 <= fraction <= 0.25, (
            f"late-write fraction for {workload} breaks the bulk-writeback premise"
        )
