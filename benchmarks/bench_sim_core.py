"""Throughput benchmark for the simulation core's cache-engine overhaul.

Measures ``ServerSystem.run`` end to end on the baseline configuration
(``base_open``) under three modes: the legacy dict-of-CacheLine engine
(``REPRO_CACHE_ENGINE=dict``), which preserves the pre-overhaul simulation
core (per-access object allocation, per-event StatGroup increments, window
scan FR-FCFS scheduling) as an honest baseline; the flat-array engine under
the fused scalar row interpreter (``REPRO_INTERP=scalar``); and the flat
engine under the two-pass vectorized batch interpreter (the default,
``REPRO_INTERP=vector``).  Results are bit-identical across all modes
(asserted here and by the parity suites); only the speed differs.

Three end-to-end scenarios bracket the design space:

* ``l1_resident`` -- every core's working set fits its L1, so the run is
  dominated by the interpreter + L1 hot path the overhaul de-abstracts.
  Server workloads filter ~90% of references in the L1, so this bounds the
  common case; it is where the >= 3x acceptance target applies.
* ``llc_resident`` -- working sets overflow the L1s into the shared LLC,
  exercising the fused LLC probe/access path.
* ``paper_workload`` -- a synthetic paper workload (``web_search``), whose
  deliberately poor cache locality pushes most accesses through the DRAM
  model; the engines share most of that cost, so the ratio is smaller.

A fourth section benchmarks ``resident_blocks_in_region`` (the BuMP
bulk-writeback scan): the flat engine probes candidate sets directly
instead of issuing one ``lookup`` call per block offset.

The results are written as a JSON trajectory file (``BENCH_sim_core.json``
by default) so CI can archive one point per commit.  Run directly::

    PYTHONPATH=src python benchmarks/bench_sim_core.py [--smoke]

``--smoke`` shrinks every trace so the whole file finishes in seconds; CI
runs it and fails when the flat engine is not faster than the dict engine
or the vector interpreter is not faster than the scalar one on the
L1-resident hot path.  The full run additionally enforces the 3x targets
(flat over dict, and vector over flat on ``l1_resident``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.cache.engine import make_cache_array
from repro.common.params import CacheParams
from repro.exec.campaign import result_fingerprint
from repro.sim.config import base_open
from repro.sim.runner import build_trace, run_trace
from repro.trace.buffer import TraceBuffer

SEED = 42
CORES = 16
WORKLOAD = "web_search"
ENGINES = ("dict", "flat")


def _rate(accesses: int, seconds: float) -> float:
    return accesses / seconds if seconds > 0 else float("inf")


def synthetic_trace(accesses: int, footprint_bytes_per_core: int,
                    store_fraction: float = 0.3, seed: int = 7) -> TraceBuffer:
    """A trace whose per-core working set has a controlled footprint.

    Each core references uniformly within its own private footprint, so the
    trace's residency level (L1 / LLC / DRAM) is set directly by
    ``footprint_bytes_per_core``.  Addresses are disjoint across cores.
    """
    rng = np.random.default_rng(seed)
    core = rng.integers(0, CORES, accesses).astype(np.int32)
    blocks_per_core = max(footprint_bytes_per_core // 64, 1)
    offsets = rng.integers(0, blocks_per_core, accesses).astype(np.uint64)
    address = (core.astype(np.uint64) << np.uint64(32)) | (offsets << np.uint64(6))
    pc = (rng.integers(0, 64, accesses).astype(np.uint64) << np.uint64(2)) \
        + np.uint64(0x400000)
    is_store = rng.random(accesses) < store_fraction
    instructions = rng.integers(1, 4, accesses).astype(np.int32)
    return TraceBuffer(core, pc, address, is_store, instructions)


#: (mode name, cache engine, DRAM engine, interpreter) measured per scenario.
#: The dict baseline preserves the pre-overhaul core *end to end* (object
#: DRAM engine, scalar rows); ``flat`` is the flat-array engine under the
#: scalar row interpreter, and ``vector`` adds the two-pass vectorized batch
#: interpreter on top.  Results are bit-identical across all three.
MODES = (
    ("dict", "dict", "object", "scalar"),
    ("flat", "flat", "flat", "scalar"),
    ("vector", "flat", "flat", "vector"),
)


def bench_scenario(name: str, trace: TraceBuffer, repeats: int) -> dict:
    """Run one trace under all three modes; report rates, ratios, parity."""
    accesses = len(trace)
    timings = {}
    results = {}
    for mode, engine, dram_engine, interp in MODES:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = run_trace(trace, base_open(), warmup_fraction=0.5,
                               cache_engine=engine, dram_engine=dram_engine,
                               interp=interp)
            best = min(best, time.perf_counter() - start)
        timings[mode] = best
        results[mode] = result
    fingerprints = {mode: result_fingerprint(results[mode])
                    for mode, _, _, _ in MODES}
    identical = len(set(fingerprints.values())) == 1
    counters = results["flat"].counters
    row = {
        "accesses": accesses,
        "dict_seconds": timings["dict"],
        "flat_seconds": timings["flat"],
        "vector_seconds": timings["vector"],
        "dict_accesses_per_second": _rate(accesses, timings["dict"]),
        "flat_accesses_per_second": _rate(accesses, timings["flat"]),
        "vector_accesses_per_second": _rate(accesses, timings["vector"]),
        "speedup": timings["dict"] / timings["flat"],
        "vector_speedup": timings["flat"] / timings["vector"],
        "results_identical": identical,
        "l1_hit_fraction": (counters["l1_hits"] / counters["accesses"]
                            if counters["accesses"] else 0.0),
    }
    print(f"  {name}: dict {row['dict_accesses_per_second']:,.0f} acc/s, "
          f"flat {row['flat_accesses_per_second']:,.0f} acc/s "
          f"({row['speedup']:.2f}x), "
          f"vector {row['vector_accesses_per_second']:,.0f} acc/s "
          f"({row['vector_speedup']:.2f}x over flat, "
          f"L1 hit {row['l1_hit_fraction']:.0%}, identical={identical})")
    return row


def bench_region_scan(repeats: int) -> dict:
    """``dirty_blocks_in_region`` under both engines, small and large regions.

    This is the BuMP bulk-writeback scan.  Both engines now probe the
    candidate sets directly instead of issuing one ``lookup`` method call
    per block offset; the flat engine additionally reduces large regions to
    two vectorized gathers with no per-line object handling.
    """
    params = CacheParams(size_bytes=4 * 1024 * 1024, associativity=16)
    scattered = [int(block) & ~63
                 for block in np.random.default_rng(3).integers(0, 1 << 30, 4096)]
    row = {}
    for region_size in (1024, 8192):
        per_engine = {}
        for engine in ENGINES:
            cache = make_cache_array(params, engine=engine)
            # Populate with a mix of in-region (alternating dirty) and
            # scattered blocks -- the same fill sequence for both engines,
            # so the scans see equal state.
            for base in range(0, 64):
                region_base = base * region_size
                for index, offset in enumerate(range(0, region_size, 128)):
                    cache.fill(region_base + offset, dirty=index % 2 == 0)
            for block in scattered:
                cache.fill(block)
            scans = 2000 * repeats
            start = time.perf_counter()
            found = 0
            for i in range(scans):
                found += len(cache.dirty_blocks_in_region(
                    (i % 64) * region_size, region_size))
            elapsed = time.perf_counter() - start
            per_engine[engine] = {
                "scans_per_second": _rate(scans, elapsed),
                "blocks_found": found,
            }
        assert (per_engine["flat"]["blocks_found"]
                == per_engine["dict"]["blocks_found"])
        row[f"region_{region_size}B"] = {
            "dict_scans_per_second": per_engine["dict"]["scans_per_second"],
            "flat_scans_per_second": per_engine["flat"]["scans_per_second"],
            "speedup": (per_engine["flat"]["scans_per_second"]
                        / per_engine["dict"]["scans_per_second"]),
        }
        print(f"  dirty-region scan ({region_size}B): "
              f"dict {per_engine['dict']['scans_per_second']:,.0f}/s, "
              f"flat {per_engine['flat']['scans_per_second']:,.0f}/s "
              f"({row[f'region_{region_size}B']['speedup']:.2f}x)")
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny traces for CI (seconds, not minutes)")
    parser.add_argument("--output", default="BENCH_sim_core.json",
                        help="trajectory JSON path")
    args = parser.parse_args(argv)

    # Full-mode l1_resident runs long enough that the one-off cold-cache
    # ramp (shared by every mode) amortizes and the steady-state hot path
    # dominates -- that is the regime the vector-interpreter target is
    # stated for.
    hot_accesses = 100_000 if args.smoke else 2_000_000
    llc_accesses = 30_000 if args.smoke else 120_000
    workload_accesses = 12_000 if args.smoke else 60_000
    repeats = 1 if args.smoke else 3

    print(f"sim-core benchmark ({'smoke' if args.smoke else 'full'}), "
          f"baseline config base_open, {CORES} cores")
    scenarios = {
        "l1_resident": bench_scenario(
            "l1_resident",
            synthetic_trace(hot_accesses, footprint_bytes_per_core=16 * 1024),
            repeats),
        "llc_resident": bench_scenario(
            "llc_resident",
            synthetic_trace(llc_accesses, footprint_bytes_per_core=192 * 1024),
            repeats),
        "paper_workload": bench_scenario(
            "paper_workload",
            build_trace(WORKLOAD, workload_accesses, num_cores=CORES, seed=SEED),
            repeats),
    }
    region_scan = bench_region_scan(repeats)

    payload = {
        "benchmark": "sim_core",
        "version": __version__,
        "mode": "smoke" if args.smoke else "full",
        "baseline_config": "base_open",
        "num_cores": CORES,
        "seed": SEED,
        "engines": {
            "dict": "legacy dict-of-CacheLine core (window-scan FR-FCFS)",
            "flat": "flat-array cache engine + fused scalar row interpreter",
            "vector": "flat-array engine + two-pass vectorized batch "
                      "interpreter (REPRO_INTERP=vector)",
        },
        "scenarios": scenarios,
        "region_scan": region_scan,
    }
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")

    failures = []
    for name, row in scenarios.items():
        if not row["results_identical"]:
            failures.append(f"{name}: engines diverged (parity broken)")
        if row["speedup"] <= 1.0:
            failures.append(
                f"{name}: flat engine not faster than dict "
                f"({row['speedup']:.2f}x)")
    if scenarios["l1_resident"]["vector_speedup"] <= 1.0:
        failures.append(
            f"l1_resident: vector interpreter not faster than scalar "
            f"({scenarios['l1_resident']['vector_speedup']:.2f}x)")
    if not args.smoke:
        if scenarios["l1_resident"]["speedup"] < 3.0:
            failures.append(
                f"l1_resident: hot-path speedup "
                f"{scenarios['l1_resident']['speedup']:.2f}x below the 3x "
                "target")
        if scenarios["l1_resident"]["vector_speedup"] < 3.0:
            failures.append(
                f"l1_resident: vector interpreter speedup "
                f"{scenarios['l1_resident']['vector_speedup']:.2f}x below "
                "the 3x target")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
