"""Throughput benchmark for the columnar streaming trace pipeline.

Measures the two stages the columnar refactor targets, each against its
pre-columnar baseline:

* **Trace generation** -- the legacy object-at-a-time engine
  (``generate_trace_legacy``: one boxed ``Access`` and several scalar RNG
  draws per access) versus the columnar engine (``generate_trace_buffer``:
  batched vector draws scattered straight into ``TraceBuffer`` columns).
* **End-to-end simulation** -- feeding the simulator a list of boxed objects
  versus streaming generator chunks through the row loop
  (``run_workload_streaming``), which also reports the trace's resident
  footprint in both shapes.

The results are written as a JSON trajectory file
(``BENCH_trace_pipeline.json`` by default) so CI can archive one point per
commit.  Run directly::

    PYTHONPATH=src python benchmarks/bench_trace_pipeline.py [--smoke]

``--smoke`` shrinks every trace so the whole file finishes in seconds (used
by the CI workflow); the full run additionally demonstrates the
million-access path: generate, store and simulate 1,000,000 accesses without
ever materializing per-access Python objects.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.sim.config import base_open
from repro.sim.runner import run_trace, run_workload_streaming
from repro.trace.buffer import TraceBuffer
from repro.trace.io import load_trace_buffer, save_trace
from repro.workloads.catalog import get_workload
from repro.workloads.generator import (
    generate_trace_buffer,
    generate_trace_legacy,
    iter_trace_chunks,
)

WORKLOAD = "web_search"
SEED = 42
CORES = 16


def _max_rss_mib() -> float:
    """Peak resident set size of this process in MiB (Linux: KiB units)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _rate(accesses: int, seconds: float) -> float:
    return accesses / seconds if seconds > 0 else float("inf")


def bench_generation(spec, accesses: int) -> dict:
    """Object-at-a-time versus columnar trace generation throughput."""
    start = time.perf_counter()
    legacy = generate_trace_legacy(spec, accesses, num_cores=CORES, seed=SEED)
    legacy_seconds = time.perf_counter() - start
    legacy_count = len(legacy)
    del legacy

    start = time.perf_counter()
    buffer = generate_trace_buffer(spec, accesses, num_cores=CORES, seed=SEED)
    columnar_seconds = time.perf_counter() - start

    legacy_rate = _rate(legacy_count, legacy_seconds)
    columnar_rate = _rate(len(buffer), columnar_seconds)
    return {
        "accesses": accesses,
        "legacy_seconds": legacy_seconds,
        "columnar_seconds": columnar_seconds,
        "legacy_accesses_per_second": legacy_rate,
        "columnar_accesses_per_second": columnar_rate,
        "speedup": columnar_rate / legacy_rate,
        "columnar_bytes_per_access": buffer.nbytes / max(len(buffer), 1),
    }


def bench_simulation(spec, accesses: int) -> dict:
    """Boxed-object versus chunk-streamed end-to-end simulation throughput."""
    config = base_open()
    buffer = generate_trace_buffer(spec, accesses, num_cores=CORES, seed=SEED)
    boxed = buffer.to_accesses()

    start = time.perf_counter()
    run_trace(boxed, config, workload_name=spec.name, warmup_fraction=0.5)
    object_seconds = time.perf_counter() - start
    del boxed

    start = time.perf_counter()
    run_workload_streaming(spec, config, num_accesses=accesses, num_cores=CORES,
                           seed=SEED, warmup_fraction=0.5)
    streamed_seconds = time.perf_counter() - start

    object_rate = _rate(accesses, object_seconds)
    streamed_rate = _rate(accesses, streamed_seconds)
    return {
        "accesses": accesses,
        "object_path_seconds": object_seconds,
        "streamed_seconds": streamed_seconds,
        "object_path_accesses_per_second": object_rate,
        "streamed_accesses_per_second": streamed_rate,
        # Streaming regenerates the trace inside the measured window, so >=1.0
        # means chunked interpretation fully hides generation cost.
        "streamed_over_object": streamed_rate / object_rate,
    }


def bench_million(spec, accesses: int) -> dict:
    """Generate, store and simulate a long trace without boxed objects."""
    start = time.perf_counter()
    buffer = TraceBuffer.concat(
        list(iter_trace_chunks(spec, accesses, num_cores=CORES, seed=SEED)))
    generate_seconds = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.npy"
        start = time.perf_counter()
        save_trace(buffer, path)
        save_seconds = time.perf_counter() - start
        file_bytes = path.stat().st_size
        start = time.perf_counter()
        mapped = load_trace_buffer(path, mmap=True)
        result = run_trace(mapped, base_open(), workload_name=spec.name,
                           warmup_fraction=0.5)
        simulate_seconds = time.perf_counter() - start

    return {
        "accesses": accesses,
        "generate_seconds": generate_seconds,
        "generate_accesses_per_second": _rate(accesses, generate_seconds),
        "save_seconds": save_seconds,
        "file_bytes": file_bytes,
        "simulate_seconds": simulate_seconds,
        "simulate_accesses_per_second": _rate(accesses, simulate_seconds),
        "row_buffer_hit_ratio": result.row_buffer_hit_ratio,
        "peak_rss_mib": _max_rss_mib(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny traces for CI (seconds, not minutes)")
    parser.add_argument("--output", default="BENCH_trace_pipeline.json",
                        help="trajectory JSON path")
    parser.add_argument("--workload", default=WORKLOAD)
    args = parser.parse_args(argv)

    spec = get_workload(args.workload)
    # Below ~50k accesses the fixed per-core layout setup (shared by both
    # engines) dominates and understates the columnar advantage, so even the
    # smoke tier measures a meaningful length.
    gen_accesses = 60_000 if args.smoke else 400_000
    sim_accesses = 8_000 if args.smoke else 60_000
    long_accesses = 0 if args.smoke else 1_000_000

    print(f"trace-pipeline benchmark ({'smoke' if args.smoke else 'full'}), "
          f"workload={spec.name}")
    generation = bench_generation(spec, gen_accesses)
    print(f"  generation: legacy {generation['legacy_accesses_per_second']:,.0f} acc/s, "
          f"columnar {generation['columnar_accesses_per_second']:,.0f} acc/s "
          f"({generation['speedup']:.1f}x)")
    simulation = bench_simulation(spec, sim_accesses)
    print(f"  simulation: object path {simulation['object_path_accesses_per_second']:,.0f} acc/s, "
          f"streamed {simulation['streamed_accesses_per_second']:,.0f} acc/s")

    payload = {
        "benchmark": "trace_pipeline",
        "version": __version__,
        "mode": "smoke" if args.smoke else "full",
        "workload": spec.name,
        "num_cores": CORES,
        "seed": SEED,
        "generation": generation,
        "simulation": simulation,
    }
    if long_accesses:
        payload["million_access"] = bench_million(spec, long_accesses)
        million = payload["million_access"]
        print(f"  {long_accesses:,} accesses: generated at "
              f"{million['generate_accesses_per_second']:,.0f} acc/s, "
              f"{million['file_bytes'] / 1e6:.0f}MB on disk, simulated at "
              f"{million['simulate_accesses_per_second']:,.0f} acc/s, "
              f"peak RSS {million['peak_rss_mib']:.0f}MiB")

    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")

    if generation["speedup"] < 3.0 and not args.smoke:
        print("WARNING: columnar generation speedup fell below the 3x target",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
