"""Throughput and correctness trajectory for the scenario engine.

Measures the :mod:`repro.scenario` compiler and the streaming scenario
simulation path, and re-checks the two properties that make scenarios safe
to use for measurement:

* **compile throughput** -- accesses/second of
  :func:`~repro.scenario.compiler.iter_scenario_chunks` for every catalog
  scenario, and the ratio against the single-workload columnar generator
  (the scenario splice should cost little over the streams it merges);
* **determinism gate** -- for every catalog scenario, two compilations at
  different chunk sizes must be bit-identical (chunk-size invariance) and a
  different seed must change the trace;
* **parity gate** -- a streamed scenario run under the flat cache engine
  must fingerprint identically to the dict engine;
* **streaming simulation** -- end-to-end accesses/second of
  ``tenant-colocation`` under ``base_open`` and ``bump``;
* **closed-loop gate** -- generation overhead of pulling a scenario
  through :class:`~repro.scenario.closed_loop.ClosedLoopSource` (with a
  synthetic feedback stream, so only controller cost is measured) versus
  draining the bare compiler, plus a run-to-run determinism check and the
  controller's equilibrium metrics on an end-to-end simulated run.  The
  full run enforces the overhead stays within ``MAX_CLOSED_LOOP_OVERHEAD``.

The results are written as a JSON trajectory file (``BENCH_scenarios.json``
by default) so CI can archive one point per commit.  Run directly::

    PYTHONPATH=src python benchmarks/bench_scenarios.py [--smoke]

``--smoke`` shrinks every scenario so the whole file finishes in seconds;
CI runs it and fails on any determinism or parity violation.  The full run
additionally enforces that scenario compilation reaches at least a quarter
of the single-workload generator's throughput.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro import __version__
from repro.exec.campaign import result_fingerprint
from repro.scenario import (
    ClosedLoopSource,
    ClosedLoopSpec,
    generate_scenario_buffer,
    get_scenario,
    run_scenario,
    scenario_names,
)
from repro.scenario.compiler import iter_scenario_chunks
from repro.sim.config import base_open, bump_system
from repro.trace.source import FeedbackSample
from repro.workloads.generator import generate_trace_buffer
from repro.workloads.catalog import get_workload

SEED = 42
#: Full-throughput gate: scenario compilation vs the single-workload
#: generator (the splice and intensity scaling should stay cheap).
MIN_COMPILE_RATIO = 0.25
#: Full-run gate: closed-loop trace production vs the bare compiler drain
#: (the controller adds clamping and one column rescale per chunk).
MAX_CLOSED_LOOP_OVERHEAD = 0.10


def _rate(accesses: int, seconds: float) -> float:
    return accesses / seconds if seconds > 0 else float("inf")


def bench_compile(name: str, scale: float, repeats: int) -> dict:
    """Compile one scenario; report throughput and the determinism gates."""
    scenario = get_scenario(name, scale=scale)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        buffer = generate_scenario_buffer(scenario, seed=SEED)
        best = min(best, time.perf_counter() - start)
    rechunked = generate_scenario_buffer(scenario, seed=SEED,
                                         chunk_size=max(len(buffer) // 7, 1))
    reseeded = generate_scenario_buffer(scenario, seed=SEED + 1)
    row = {
        "accesses": len(buffer),
        "phases": len(scenario.phases),
        "seconds": best,
        "accesses_per_second": _rate(len(buffer), best),
        "chunk_invariant": buffer == rechunked,
        "seed_sensitive": not (buffer == reseeded),
    }
    print(f"  compile {name}: {row['accesses_per_second']:,.0f} acc/s "
          f"({row['accesses']} accesses, {row['phases']} phase(s), "
          f"chunk_invariant={row['chunk_invariant']}, "
          f"seed_sensitive={row['seed_sensitive']})")
    return row


def bench_single_workload_baseline(accesses: int, repeats: int) -> dict:
    """Columnar single-workload generation, the compile-throughput yardstick."""
    spec = get_workload("web_search")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        generate_trace_buffer(spec, accesses, num_cores=16, seed=SEED)
        best = min(best, time.perf_counter() - start)
    row = {"accesses": accesses, "seconds": best,
           "accesses_per_second": _rate(accesses, best)}
    print(f"  baseline single-workload generation: "
          f"{row['accesses_per_second']:,.0f} acc/s")
    return row


def bench_streaming_sim(scale: float, parity_scale: float) -> dict:
    """Streamed tenant-colocation under base vs BuMP, plus the parity gate."""
    scenario = get_scenario("tenant-colocation", scale=scale)
    rows = {}
    for config in (base_open(), bump_system()):
        start = time.perf_counter()
        result = run_scenario(scenario, config, seed=SEED)
        elapsed = time.perf_counter() - start
        rows[config.name] = {
            "seconds": elapsed,
            "accesses_per_second": _rate(scenario.total_accesses, elapsed),
            "row_buffer_hit_ratio": result.row_buffer_hit_ratio,
        }
        print(f"  sim tenant-colocation/{config.name}: "
              f"{rows[config.name]['accesses_per_second']:,.0f} acc/s, "
              f"row-hit {result.row_buffer_hit_ratio:.3f}")
    parity_scenario = get_scenario("antagonist-burst", scale=parity_scale)
    flat = run_scenario(parity_scenario, base_open(), cache_engine="flat")
    legacy = run_scenario(parity_scenario, base_open(), cache_engine="dict")
    identical = result_fingerprint(flat) == result_fingerprint(legacy)
    print(f"  engine parity (antagonist-burst): identical={identical}")
    return {
        "scenario": "tenant-colocation",
        "accesses": scenario.total_accesses,
        "configs": rows,
        "engine_parity_identical": identical,
    }


def _drain_open_loop(scenario, chunk_size: int) -> int:
    """Pull the bare compiler stream to exhaustion; the overhead yardstick."""
    total = 0
    for chunk in iter_scenario_chunks(scenario, seed=SEED,
                                      chunk_size=chunk_size):
        total += len(chunk)
    return total


def _drain_closed_loop(scenario, spec: ClosedLoopSpec, chunk_size: int):
    """Pull a ``ClosedLoopSource`` to exhaustion under synthetic feedback.

    The feedback stream advances deterministically with the pulled access
    count (about one read per three accesses at roughly target latency), so
    the controller updates at every boundary and the measurement isolates
    production-side cost -- no simulator in the loop.
    """
    source = ClosedLoopSource(scenario, spec, seed=SEED,
                              chunk_size=chunk_size)
    pulled = 0
    reads = 0
    latency = 0.0
    feedback = None
    while True:
        chunk = source.next_chunk(feedback)
        if chunk is None:
            return pulled, source
        pulled += len(chunk)
        reads += max(len(chunk) // 3, 1)
        latency += max(len(chunk) // 3, 1) * (spec.target_latency * 0.9)
        feedback = FeedbackSample(
            accesses=pulled, core_cycle=pulled * 4.0, demand_reads=reads,
            read_latency_cycles=latency, queue_depth=0, llc_misses=reads)


def bench_closed_loop(gen_scale: float, sim_scale: float,
                      repeats: int) -> dict:
    """Closed-loop production overhead, determinism and equilibrium."""
    spec = ClosedLoopSpec(target_latency=60.0, interval=1024, gain=0.5)
    scenario = get_scenario("diurnal-ramp", scale=gen_scale)
    # Chunk both drains at the control interval so the closed-loop path's
    # boundary clamping never shortens a pull: any timing gap left is pure
    # controller plus rescale cost.
    chunk_size = spec.interval
    open_best = float("inf")
    closed_best = float("inf")
    accesses = 0
    for _ in range(repeats):
        start = time.perf_counter()
        accesses = _drain_open_loop(scenario, chunk_size)
        open_best = min(open_best, time.perf_counter() - start)
    for _ in range(repeats):
        start = time.perf_counter()
        pulled, _ = _drain_closed_loop(scenario, spec, chunk_size)
        closed_best = min(closed_best, time.perf_counter() - start)
        assert pulled == accesses
    overhead = closed_best / open_best - 1.0 if open_best > 0 else 0.0

    sim_scenario = get_scenario("diurnal-ramp", scale=sim_scale)
    source = ClosedLoopSource(sim_scenario, spec, seed=SEED,
                              chunk_size=spec.interval)
    result = run_scenario(sim_scenario, base_open(), seed=SEED,
                          closed_loop=source)
    rerun = run_scenario(sim_scenario, base_open(), seed=SEED,
                         closed_loop=spec, chunk_size=spec.interval)
    deterministic = result_fingerprint(result) == result_fingerprint(rerun)
    reads = result.dram["demand_reads"]
    achieved = (result.dram["demand_read_latency_cycles"] / reads
                if reads else 0.0)
    row = {
        "accesses": accesses,
        "open_loop_seconds": open_best,
        "closed_loop_seconds": closed_best,
        "generation_overhead": overhead,
        "controller_updates": source.updates,
        "final_intensity": source.current_intensity,
        "target_latency": spec.target_latency,
        "achieved_read_latency": achieved,
        "deterministic": deterministic,
    }
    print(f"  closed-loop generation: {overhead * 100:+.1f}% vs open-loop "
          f"({accesses} accesses), {source.updates} update(s), "
          f"final intensity {source.current_intensity:.3f}, "
          f"latency {achieved:.1f} (target {spec.target_latency:.0f}), "
          f"deterministic={deterministic}")
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny scenarios for CI (seconds, not minutes)")
    parser.add_argument("--output", default="BENCH_scenarios.json",
                        help="trajectory JSON path")
    args = parser.parse_args(argv)

    compile_scale = 0.01 if args.smoke else 0.25
    sim_scale = 0.004 if args.smoke else 0.05
    parity_scale = 0.002 if args.smoke else 0.01
    repeats = 1 if args.smoke else 3

    print(f"scenario benchmark ({'smoke' if args.smoke else 'full'}), "
          f"compile scale {compile_scale}, sim scale {sim_scale}")
    compile_rows = {name: bench_compile(name, compile_scale, repeats)
                    for name in scenario_names()}
    baseline = bench_single_workload_baseline(
        compile_rows["tenant-colocation"]["accesses"], repeats)
    streaming = bench_streaming_sim(sim_scale, parity_scale)
    closed_loop = bench_closed_loop(compile_scale, sim_scale, repeats)

    payload = {
        "benchmark": "scenarios",
        "version": __version__,
        "mode": "smoke" if args.smoke else "full",
        "seed": SEED,
        "compile": compile_rows,
        "single_workload_baseline": baseline,
        "streaming_sim": streaming,
        "closed_loop": closed_loop,
    }
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")

    failures = []
    for name, row in compile_rows.items():
        if not row["chunk_invariant"]:
            failures.append(f"{name}: chunking changed the trace")
        if not row["seed_sensitive"]:
            failures.append(f"{name}: reseeding did not change the trace")
    if not streaming["engine_parity_identical"]:
        failures.append("flat and dict engines diverged on a scenario trace")
    if not closed_loop["deterministic"]:
        failures.append("closed-loop rerun diverged from itself")
    if (not args.smoke
            and closed_loop["generation_overhead"] > MAX_CLOSED_LOOP_OVERHEAD):
        failures.append(
            f"closed-loop production at "
            f"{closed_loop['generation_overhead'] * 100:+.1f}% over the bare "
            f"compiler (target <= {MAX_CLOSED_LOOP_OVERHEAD * 100:.0f}%)")
    if not args.smoke:
        ratio = (min(row["accesses_per_second"]
                     for row in compile_rows.values())
                 / baseline["accesses_per_second"])
        if ratio < MIN_COMPILE_RATIO:
            failures.append(
                f"scenario compilation at {ratio:.2f}x of the single-workload "
                f"generator (target >= {MIN_COMPILE_RATIO}x)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
