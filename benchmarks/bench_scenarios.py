"""Throughput and correctness trajectory for the scenario engine.

Measures the :mod:`repro.scenario` compiler and the streaming scenario
simulation path, and re-checks the two properties that make scenarios safe
to use for measurement:

* **compile throughput** -- accesses/second of
  :func:`~repro.scenario.compiler.iter_scenario_chunks` for every catalog
  scenario, and the ratio against the single-workload columnar generator
  (the scenario splice should cost little over the streams it merges);
* **determinism gate** -- for every catalog scenario, two compilations at
  different chunk sizes must be bit-identical (chunk-size invariance) and a
  different seed must change the trace;
* **parity gate** -- a streamed scenario run under the flat cache engine
  must fingerprint identically to the dict engine;
* **streaming simulation** -- end-to-end accesses/second of
  ``tenant-colocation`` under ``base_open`` and ``bump``.

The results are written as a JSON trajectory file (``BENCH_scenarios.json``
by default) so CI can archive one point per commit.  Run directly::

    PYTHONPATH=src python benchmarks/bench_scenarios.py [--smoke]

``--smoke`` shrinks every scenario so the whole file finishes in seconds;
CI runs it and fails on any determinism or parity violation.  The full run
additionally enforces that scenario compilation reaches at least a quarter
of the single-workload generator's throughput.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro import __version__
from repro.exec.campaign import result_fingerprint
from repro.scenario import (
    generate_scenario_buffer,
    get_scenario,
    run_scenario,
    scenario_names,
)
from repro.sim.config import base_open, bump_system
from repro.workloads.generator import generate_trace_buffer
from repro.workloads.catalog import get_workload

SEED = 42
#: Full-throughput gate: scenario compilation vs the single-workload
#: generator (the splice and intensity scaling should stay cheap).
MIN_COMPILE_RATIO = 0.25


def _rate(accesses: int, seconds: float) -> float:
    return accesses / seconds if seconds > 0 else float("inf")


def bench_compile(name: str, scale: float, repeats: int) -> dict:
    """Compile one scenario; report throughput and the determinism gates."""
    scenario = get_scenario(name, scale=scale)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        buffer = generate_scenario_buffer(scenario, seed=SEED)
        best = min(best, time.perf_counter() - start)
    rechunked = generate_scenario_buffer(scenario, seed=SEED,
                                         chunk_size=max(len(buffer) // 7, 1))
    reseeded = generate_scenario_buffer(scenario, seed=SEED + 1)
    row = {
        "accesses": len(buffer),
        "phases": len(scenario.phases),
        "seconds": best,
        "accesses_per_second": _rate(len(buffer), best),
        "chunk_invariant": buffer == rechunked,
        "seed_sensitive": not (buffer == reseeded),
    }
    print(f"  compile {name}: {row['accesses_per_second']:,.0f} acc/s "
          f"({row['accesses']} accesses, {row['phases']} phase(s), "
          f"chunk_invariant={row['chunk_invariant']}, "
          f"seed_sensitive={row['seed_sensitive']})")
    return row


def bench_single_workload_baseline(accesses: int, repeats: int) -> dict:
    """Columnar single-workload generation, the compile-throughput yardstick."""
    spec = get_workload("web_search")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        generate_trace_buffer(spec, accesses, num_cores=16, seed=SEED)
        best = min(best, time.perf_counter() - start)
    row = {"accesses": accesses, "seconds": best,
           "accesses_per_second": _rate(accesses, best)}
    print(f"  baseline single-workload generation: "
          f"{row['accesses_per_second']:,.0f} acc/s")
    return row


def bench_streaming_sim(scale: float, parity_scale: float) -> dict:
    """Streamed tenant-colocation under base vs BuMP, plus the parity gate."""
    scenario = get_scenario("tenant-colocation", scale=scale)
    rows = {}
    for config in (base_open(), bump_system()):
        start = time.perf_counter()
        result = run_scenario(scenario, config, seed=SEED)
        elapsed = time.perf_counter() - start
        rows[config.name] = {
            "seconds": elapsed,
            "accesses_per_second": _rate(scenario.total_accesses, elapsed),
            "row_buffer_hit_ratio": result.row_buffer_hit_ratio,
        }
        print(f"  sim tenant-colocation/{config.name}: "
              f"{rows[config.name]['accesses_per_second']:,.0f} acc/s, "
              f"row-hit {result.row_buffer_hit_ratio:.3f}")
    parity_scenario = get_scenario("antagonist-burst", scale=parity_scale)
    flat = run_scenario(parity_scenario, base_open(), cache_engine="flat")
    legacy = run_scenario(parity_scenario, base_open(), cache_engine="dict")
    identical = result_fingerprint(flat) == result_fingerprint(legacy)
    print(f"  engine parity (antagonist-burst): identical={identical}")
    return {
        "scenario": "tenant-colocation",
        "accesses": scenario.total_accesses,
        "configs": rows,
        "engine_parity_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny scenarios for CI (seconds, not minutes)")
    parser.add_argument("--output", default="BENCH_scenarios.json",
                        help="trajectory JSON path")
    args = parser.parse_args(argv)

    compile_scale = 0.01 if args.smoke else 0.25
    sim_scale = 0.004 if args.smoke else 0.05
    parity_scale = 0.002 if args.smoke else 0.01
    repeats = 1 if args.smoke else 3

    print(f"scenario benchmark ({'smoke' if args.smoke else 'full'}), "
          f"compile scale {compile_scale}, sim scale {sim_scale}")
    compile_rows = {name: bench_compile(name, compile_scale, repeats)
                    for name in scenario_names()}
    baseline = bench_single_workload_baseline(
        compile_rows["tenant-colocation"]["accesses"], repeats)
    streaming = bench_streaming_sim(sim_scale, parity_scale)

    payload = {
        "benchmark": "scenarios",
        "version": __version__,
        "mode": "smoke" if args.smoke else "full",
        "seed": SEED,
        "compile": compile_rows,
        "single_workload_baseline": baseline,
        "streaming_sim": streaming,
    }
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")

    failures = []
    for name, row in compile_rows.items():
        if not row["chunk_invariant"]:
            failures.append(f"{name}: chunking changed the trace")
        if not row["seed_sensitive"]:
            failures.append(f"{name}: reseeding did not change the trace")
    if not streaming["engine_parity_identical"]:
        failures.append("flat and dict engines diverged on a scenario trace")
    if not args.smoke:
        ratio = (min(row["accesses_per_second"]
                     for row in compile_rows.values())
                 / baseline["accesses_per_second"])
        if ratio < MIN_COMPILE_RATIO:
            failures.append(
                f"scenario compilation at {ratio:.2f}x of the single-workload "
                f"generator (target >= {MIN_COMPILE_RATIO}x)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
