"""Overhead gate for the telemetry layer.

Telemetry must be observational: with ``REPRO_TELEMETRY=full`` the simulator
records a per-chunk timeline plus span events, and the result must stay
bit-identical to an unobserved run while costing at most **5%** wall time.
This benchmark measures exactly that, on the two ends of the memory
behaviour spectrum:

* ``l1_resident`` -- a footprint that lives in the L1s, so the simulator's
  per-access work is minimal and any per-chunk telemetry cost is maximally
  visible;
* ``dram_resident`` -- every access walks the full hierarchy into DRAM,
  the paper's operating point.

Both traces are streamed at a deliberately small chunk size (8192 accesses)
so telemetry samples many times per run -- several times more often than the
default 65536-access streaming granularity -- making this a conservative
upper bound on the per-sample cost.

Results are written as a JSON trajectory file (``BENCH_telemetry.json`` by
default) so CI can archive one point per commit.  Run directly::

    PYTHONPATH=src python benchmarks/bench_telemetry.py [--smoke]

The exit status is nonzero when any scenario exceeds the 5% overhead budget
or when a telemetry-on run is not bit-identical to telemetry-off -- both
enforced in CI on the smoke variant.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.exec.campaign import result_fingerprint
from repro.sim.config import base_open, bump_system
from repro.sim.runner import run_trace
from repro.telemetry import TelemetryRecorder
from repro.trace.buffer import TraceBuffer

SEED = 42
CORES = 16
#: Streaming granularity under test -- 8x finer than the default chunk, so
#: the sampler fires 8x more often than production runs would see.
CHUNK = 8192
#: Full-mode overhead budget relative to off (the acceptance gate).
OVERHEAD_GATE = 0.05


def synthetic_trace(accesses: int, footprint_bytes_per_core: int,
                    store_fraction: float = 0.5, seed: int = 7) -> TraceBuffer:
    """A trace whose per-core working set has a controlled footprint."""
    rng = np.random.default_rng(seed)
    core = rng.integers(0, CORES, accesses).astype(np.int32)
    blocks_per_core = max(footprint_bytes_per_core // 64, 1)
    offsets = rng.integers(0, blocks_per_core, accesses).astype(np.uint64)
    address = (core.astype(np.uint64) << np.uint64(32)) | (offsets << np.uint64(6))
    pc = (rng.integers(0, 64, accesses).astype(np.uint64) << np.uint64(2)) \
        + np.uint64(0x400000)
    is_store = rng.random(accesses) < store_fraction
    instructions = rng.integers(1, 4, accesses).astype(np.int32)
    return TraceBuffer(core, pc, address, is_store, instructions)


def _chunked(trace: TraceBuffer) -> list:
    """Slice a trace into CHUNK-sized streaming pieces."""
    return [trace[lo:lo + CHUNK] for lo in range(0, len(trace), CHUNK)]


def bench_scenario(name: str, trace: TraceBuffer, config, repeats: int) -> dict:
    """Time one trace with telemetry off and full; compare results and cost."""
    chunks = _chunked(trace)
    timings = {"off": float("inf"), "full": float("inf")}
    digests = {}
    samples = 0
    events = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result_off = run_trace(chunks, config, warmup_fraction=0.5,
                               num_accesses=len(trace), telemetry="off")
        timings["off"] = min(timings["off"], time.perf_counter() - start)
        digests["off"] = result_fingerprint(result_off)

        recorder = TelemetryRecorder("full")
        start = time.perf_counter()
        result_full = run_trace(chunks, config, warmup_fraction=0.5,
                                num_accesses=len(trace), telemetry=recorder)
        timings["full"] = min(timings["full"], time.perf_counter() - start)
        digests["full"] = result_fingerprint(result_full)
        samples = len(recorder.timeline)
        events = len(recorder.tracer.events) + samples

    overhead = timings["full"] / timings["off"] - 1.0
    identical = digests["off"] == digests["full"]
    row = {
        "accesses": len(trace),
        "chunk_size": CHUNK,
        "config": config.name,
        "off_seconds": timings["off"],
        "full_seconds": timings["full"],
        "overhead_fraction": overhead,
        "timeline_samples": samples,
        "event_log_entries": events,
        "results_identical": identical,
    }
    print(f"  {name}: off {timings['off']:.3f}s, full {timings['full']:.3f}s "
          f"({overhead:+.1%} overhead, {samples} samples, "
          f"identical={identical})")
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short traces for CI (seconds, not minutes)")
    parser.add_argument("--output", default="BENCH_telemetry.json",
                        help="trajectory JSON path")
    args = parser.parse_args(argv)

    accesses = 40_000 if args.smoke else 160_000
    repeats = 5

    print(f"telemetry overhead benchmark ({'smoke' if args.smoke else 'full'}),"
          f" {CORES} cores, chunk {CHUNK}")

    scenarios = {
        "l1_resident": bench_scenario(
            "l1_resident",
            synthetic_trace(accesses, 16 * 1024), base_open(), repeats),
        "dram_resident": bench_scenario(
            "dram_resident",
            synthetic_trace(accesses, 2 * 1024 * 1024), bump_system(), repeats),
    }

    payload = {
        "benchmark": "telemetry",
        "version": __version__,
        "mode": "smoke" if args.smoke else "full",
        "num_cores": CORES,
        "seed": SEED,
        "chunk_size": CHUNK,
        "overhead_gate": OVERHEAD_GATE,
        "scenarios": scenarios,
    }
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")

    failures = []
    for name, row in scenarios.items():
        if not row["results_identical"]:
            failures.append(
                f"{name}: full-telemetry result differs from off "
                "(telemetry is no longer observational)")
        if row["overhead_fraction"] > OVERHEAD_GATE:
            failures.append(
                f"{name}: full-mode overhead {row['overhead_fraction']:+.1%} "
                f"exceeds the {OVERHEAD_GATE:.0%} budget")
        if row["timeline_samples"] < 2:
            failures.append(
                f"{name}: only {row['timeline_samples']} timeline sample(s) "
                "recorded -- the sampler is not firing per chunk")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
