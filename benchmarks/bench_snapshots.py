"""Amortized-warmup gate for the warm-state snapshot engine.

Fork-per-query is the point of ``repro.sim.snapshot``: a query sweep that
re-simulates the same warmup before every measured tail wastes almost all
of its wall time when the warmup dominates the trace.  This benchmark
measures the two costs that justify the subsystem:

* **round trip** -- capture, save, load and restore wall time plus the
  snapshot's on-disk size, for one warmed system;
* **amortized queries** -- a 4-query sweep over a warmup-heavy trace
  (95% warmup, 5% measured tail) run twice: cold (every query re-simulates
  the warmup) and snapshot-backed (the first query captures, the rest
  restore).  The snapshot sweep must be at least **3x** faster, and every
  query's result must be bit-identical to its cold twin.

Results are written as a JSON trajectory file (``BENCH_snapshots.json`` by
default) so CI can archive one point per commit.  Run directly::

    PYTHONPATH=src python benchmarks/bench_snapshots.py [--smoke]

The exit status is nonzero when the speedup gate fails or any restored
query diverges from its cold twin -- both enforced in CI on the smoke
variant.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.exec.campaign import result_fingerprint
from repro.exec.store import ArtifactStore
from repro.sim.config import bump_system
from repro.sim.runner import build_trace, run_trace
from repro.sim.snapshot import (
    capture_warmup,
    load_snapshot,
    restore,
    save_snapshot,
)
from repro.sim.system import ServerSystem
from repro.telemetry.metrics import (
    reset_snapshot_counters,
    snapshot_cache_info,
)

WORKLOAD = "web_search"
CORES = 16
SEED = 42
#: Fraction of each query's trace spent warming up; the paper-style sweep
#: measures a short steady-state window after a long warm approach.
WARMUP_FRACTION = 0.95
QUERIES = 4
#: The acceptance gate: the snapshot-backed sweep must beat re-warming
#: per query by at least this factor (theoretical ceiling for 4 queries at
#: 95% warmup is ~3.5x).
SPEEDUP_GATE = 3.0


def bench_round_trip(trace, config, warmup: int, tmp_dir: Path) -> dict:
    """Time capture, save, load and restore of one warmed system."""
    system = ServerSystem(config, workload_name=WORKLOAD)
    start = time.perf_counter()
    snapshot, _, _ = capture_warmup(system, trace, warmup)
    capture_seconds = time.perf_counter() - start

    path = tmp_dir / "bench.npz"
    start = time.perf_counter()
    save_snapshot(snapshot, path)
    save_seconds = time.perf_counter() - start

    start = time.perf_counter()
    loaded = load_snapshot(path)
    load_seconds = time.perf_counter() - start

    start = time.perf_counter()
    restore(loaded)
    restore_seconds = time.perf_counter() - start

    row = {
        "warmup_accesses": warmup,
        "capture_seconds": capture_seconds,
        "save_seconds": save_seconds,
        "load_seconds": load_seconds,
        "restore_seconds": restore_seconds,
        "snapshot_bytes": snapshot.nbytes,
        "file_bytes": path.stat().st_size,
    }
    print(f"  round trip: capture {capture_seconds:.3f}s "
          f"(includes the warmup simulation), save {save_seconds:.3f}s, "
          f"load {load_seconds:.3f}s, restore {restore_seconds:.3f}s, "
          f"{snapshot.nbytes / (1 << 20):.1f} MiB")
    return row


def bench_amortized(trace, config, tmp_dir: Path) -> dict:
    """4 identical warmup-heavy queries: cold per query vs snapshot-backed."""
    start = time.perf_counter()
    cold_digests = []
    for _ in range(QUERIES):
        result = run_trace(trace, config, workload_name=WORKLOAD,
                           warmup_fraction=WARMUP_FRACTION)
        cold_digests.append(result_fingerprint(result))
    cold_seconds = time.perf_counter() - start

    reset_snapshot_counters()
    store = ArtifactStore(tmp_dir / "store")
    key = "0123456789abcdef" * 2
    start = time.perf_counter()
    warm_digests = []
    for _ in range(QUERIES):
        result = run_trace(trace, config, workload_name=WORKLOAD,
                           warmup_fraction=WARMUP_FRACTION,
                           warmup_snapshot=store, snapshot_key=key)
        warm_digests.append(result_fingerprint(result))
    warm_seconds = time.perf_counter() - start

    counters = snapshot_cache_info()
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    identical = warm_digests == cold_digests
    row = {
        "queries": QUERIES,
        "accesses_per_query": len(trace),
        "warmup_fraction": WARMUP_FRACTION,
        "cold_seconds": cold_seconds,
        "snapshot_seconds": warm_seconds,
        "speedup": speedup,
        "captures": counters["captures"],
        "restores": counters["restores"],
        "results_identical": identical,
    }
    print(f"  amortized: cold {cold_seconds:.2f}s, snapshot "
          f"{warm_seconds:.2f}s ({speedup:.2f}x, "
          f"{counters['captures']} capture(s) + "
          f"{counters['restores']} restore(s), identical={identical})")
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short traces for CI (seconds, not minutes)")
    parser.add_argument("--output", default="BENCH_snapshots.json",
                        help="trajectory JSON path")
    args = parser.parse_args(argv)

    accesses = 60_000 if args.smoke else 400_000
    config = bump_system()
    trace = build_trace(WORKLOAD, accesses, num_cores=CORES, seed=SEED)

    print(f"snapshot benchmark ({'smoke' if args.smoke else 'full'}), "
          f"{accesses} accesses, {CORES} cores, "
          f"{WARMUP_FRACTION:.0%} warmup")

    with tempfile.TemporaryDirectory() as tmp:
        tmp_dir = Path(tmp)
        round_trip = bench_round_trip(
            trace, config, int(accesses * WARMUP_FRACTION), tmp_dir)
        amortized = bench_amortized(trace, config, tmp_dir)

    payload = {
        "benchmark": "snapshots",
        "version": __version__,
        "mode": "smoke" if args.smoke else "full",
        "workload": WORKLOAD,
        "num_cores": CORES,
        "seed": SEED,
        "speedup_gate": SPEEDUP_GATE,
        "round_trip": round_trip,
        "amortized": amortized,
    }
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")

    failures = []
    if not amortized["results_identical"]:
        failures.append(
            "amortized: a snapshot-backed query diverged from its cold twin "
            "(restore is no longer bit-identical)")
    if amortized["speedup"] < SPEEDUP_GATE:
        failures.append(
            f"amortized: {amortized['speedup']:.2f}x speedup is below the "
            f"{SPEEDUP_GATE:.1f}x gate")
    if amortized["captures"] != 1 or amortized["restores"] != QUERIES - 1:
        failures.append(
            f"amortized: expected 1 capture + {QUERIES - 1} restores, saw "
            f"{amortized['captures']} + {amortized['restores']} "
            "(the store is not being reused)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
