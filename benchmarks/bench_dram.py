"""Throughput benchmark for the flat-array DRAM engine.

Measures the flat DRAM engine (``repro.dram.flat``, the default) against the
object engine (``repro.dram.system`` + per-request ``MemoryController``),
which preserves the request-object memory system as an honest baseline.
Results are bit-identical between the engines (asserted here and by the
parity suite); only the speed differs.

Two kinds of scenarios bracket the engine:

* **Engine replay** -- the DRAM transfer stream of a memory-bound run is
  recorded once and replayed through both memory-system engines in
  isolation.  This is the engine comparison proper (100% memory system, no
  cache-layer time diluting it) and where the >= 2x acceptance target
  applies: ``replay_random`` replays the row-locality-poor stream of a
  DRAM-resident run, ``replay_bulk`` the row-hit-heavy stream of a
  Full-region bulk-streaming run.

* **End to end** -- whole simulations under both engines: a synthetic
  DRAM-resident trace (every access misses the LLC), a writeback storm
  (store-heavy traffic through the eager-writeback system, ~2 DRAM
  transfers per access), and the two memory-bound catalog scenarios the
  paper's multi-tenant evaluation leans on (``antagonist-burst`` and
  ``tenant-colocation``) under BuMP and the open-row baseline.  These
  ratios are Amdahl-bounded by the (already flattened) cache layer, so they
  sit below the replay numbers; the JSON records both honestly.

The results are written as a JSON trajectory file (``BENCH_dram.json`` by
default) so CI can archive one point per commit.  Run directly::

    PYTHONPATH=src python benchmarks/bench_dram.py [--smoke]

``--smoke`` shrinks every stream so the whole file finishes in seconds; CI
runs it and fails when the flat engine is not faster than the object engine
on any scenario (or when the engines diverge).  The full run additionally
enforces the 2x replay target.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.common.request import DRAMRequest, DRAMRequestKind
from repro.dram.flat import FlatMemorySystem
from repro.dram.system import MemorySystem
from repro.exec.campaign import result_fingerprint
from repro.scenario.catalog import get_scenario
from repro.scenario.compiler import iter_scenario_chunks
from repro.sim.config import base_open, bump_system, eager_writeback_system
from repro.sim.runner import run_trace
from repro.sim.system import ServerSystem
from repro.trace.buffer import TraceBuffer

SEED = 42
CORES = 16
KINDS = list(DRAMRequestKind)
REPLAY_BATCH = 4096


def _rate(count: int, seconds: float) -> float:
    return count / seconds if seconds > 0 else float("inf")


def synthetic_trace(accesses: int, footprint_bytes_per_core: int,
                    store_fraction: float = 0.5, seed: int = 7) -> TraceBuffer:
    """A trace whose per-core working set has a controlled footprint."""
    rng = np.random.default_rng(seed)
    core = rng.integers(0, CORES, accesses).astype(np.int32)
    blocks_per_core = max(footprint_bytes_per_core // 64, 1)
    offsets = rng.integers(0, blocks_per_core, accesses).astype(np.uint64)
    address = (core.astype(np.uint64) << np.uint64(32)) | (offsets << np.uint64(6))
    pc = (rng.integers(0, 64, accesses).astype(np.uint64) << np.uint64(2)) \
        + np.uint64(0x400000)
    is_store = rng.random(accesses) < store_fraction
    instructions = rng.integers(1, 4, accesses).astype(np.int32)
    return TraceBuffer(core, pc, address, is_store, instructions)


# --------------------------------------------------------------------- #
# Engine replay
# --------------------------------------------------------------------- #
def record_transfer_stream(trace: TraceBuffer, config) -> tuple:
    """Run one simulation and record every DRAM transfer it generates."""
    system = ServerSystem(config, workload_name="recorder", dram_engine="flat")
    blocks: list = []
    kinds: list = []
    arrivals: list = []
    original = system.memory.enqueue_block_batch

    def recording(batch_blocks, batch_kinds, batch_arrivals):
        blocks.extend(batch_blocks)
        kinds.extend(batch_kinds)
        arrivals.extend(batch_arrivals)
        original(batch_blocks, batch_kinds, batch_arrivals)

    system.memory.enqueue_block_batch = recording
    system.run(trace)
    return (np.array(blocks, dtype=np.int64),
            np.array(kinds, dtype=np.int64),
            np.array(arrivals, dtype=np.float64),
            config)


def _fresh_engines(config):
    params = config.system
    system = ServerSystem(config, dram_engine="object")
    obj = system.memory
    flat = FlatMemorySystem(params.dram_timing, params.dram_org, obj.mapping,
                            config.page_policy,
                            window=params.dram_org.transaction_queue_entries)
    return obj, flat


def bench_replay(name: str, stream: tuple, repeats: int) -> dict:
    """Replay a recorded transfer stream through both engines in isolation."""
    blocks, kinds, arrivals, config = stream
    transfers = len(blocks)
    blocks_list = blocks.tolist()
    kinds_enum = [KINDS[k] for k in kinds.tolist()]
    arrivals_list = arrivals.tolist()

    best = {"object": float("inf"), "flat": float("inf")}
    stats = {}
    for _ in range(repeats):
        obj, flat = _fresh_engines(config)
        start = time.perf_counter()
        enqueue = obj.enqueue
        for i in range(transfers):
            enqueue(DRAMRequest(block_address=blocks_list[i],
                                kind=kinds_enum[i],
                                arrival_cycle=arrivals_list[i]))
        obj.drain()
        best["object"] = min(best["object"], time.perf_counter() - start)
        stats["object"] = obj.aggregate_stats().snapshot()

        start = time.perf_counter()
        for lo in range(0, transfers, REPLAY_BATCH):
            flat.enqueue_block_batch(blocks[lo:lo + REPLAY_BATCH],
                                     kinds[lo:lo + REPLAY_BATCH],
                                     arrivals[lo:lo + REPLAY_BATCH])
        flat.drain()
        best["flat"] = min(best["flat"], time.perf_counter() - start)
        stats["flat"] = flat.aggregate_stats().snapshot()

    identical = stats["flat"] == stats["object"]
    row = {
        "kind": "engine_replay",
        "transfers": transfers,
        "object_seconds": best["object"],
        "flat_seconds": best["flat"],
        "object_transfers_per_second": _rate(transfers, best["object"]),
        "flat_transfers_per_second": _rate(transfers, best["flat"]),
        "speedup": best["object"] / best["flat"],
        "results_identical": identical,
        "row_hit_ratio": (stats["flat"]["row_hits"] / stats["flat"]["accesses"]
                          if stats["flat"]["accesses"] else 0.0),
    }
    print(f"  {name}: object {row['object_transfers_per_second']:,.0f} tr/s, "
          f"flat {row['flat_transfers_per_second']:,.0f} tr/s "
          f"({row['speedup']:.2f}x, row hit {row['row_hit_ratio']:.0%}, "
          f"identical={identical})")
    return row


# --------------------------------------------------------------------- #
# End-to-end scenarios
# --------------------------------------------------------------------- #
def bench_end_to_end(name: str, trace, config, repeats: int,
                     num_accesses=None) -> dict:
    """Run one trace (or chunk list) under both DRAM engines, end to end."""
    timings = {}
    results = {}
    for engine in ("object", "flat"):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = run_trace(trace, config, warmup_fraction=0.5,
                               dram_engine=engine, num_accesses=num_accesses)
            best = min(best, time.perf_counter() - start)
        timings[engine] = best
        results[engine] = result
    identical = (result_fingerprint(results["flat"])
                 == result_fingerprint(results["object"]))
    accesses = int(results["flat"].counters["accesses"])
    transfers = int(results["flat"].dram["accesses"])
    row = {
        "kind": "end_to_end",
        "config": config.name,
        "accesses": accesses,
        "dram_transfers": transfers,
        "object_seconds": timings["object"],
        "flat_seconds": timings["flat"],
        "object_accesses_per_second": _rate(accesses, timings["object"]),
        "flat_accesses_per_second": _rate(accesses, timings["flat"]),
        "speedup": timings["object"] / timings["flat"],
        "results_identical": identical,
    }
    print(f"  {name}: object {row['object_accesses_per_second']:,.0f} acc/s, "
          f"flat {row['flat_accesses_per_second']:,.0f} acc/s "
          f"({row['speedup']:.2f}x, {transfers} transfers, "
          f"identical={identical})")
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny streams for CI (seconds, not minutes)")
    parser.add_argument("--output", default="BENCH_dram.json",
                        help="trajectory JSON path")
    args = parser.parse_args(argv)

    resident_accesses = 20_000 if args.smoke else 120_000
    storm_accesses = 15_000 if args.smoke else 60_000
    bulk_accesses = 4_000 if args.smoke else 20_000
    scenario_scale = 0.01 if args.smoke else 0.1
    repeats = 1 if args.smoke else 3

    print(f"DRAM engine benchmark ({'smoke' if args.smoke else 'full'}), "
          f"{CORES} cores")

    resident_trace = synthetic_trace(resident_accesses, 2 * 1024 * 1024)
    storm_trace = synthetic_trace(storm_accesses, 2 * 1024 * 1024,
                                  store_fraction=0.95)
    from repro.sim.config import full_region_system

    print("engine replay (isolated memory system):")
    scenarios = {
        "replay_random": bench_replay(
            "replay_random",
            record_transfer_stream(resident_trace, base_open()), repeats),
        "replay_bulk": bench_replay(
            "replay_bulk",
            record_transfer_stream(
                synthetic_trace(bulk_accesses, 2 * 1024 * 1024),
                full_region_system()),
            repeats),
    }

    print("end to end (full simulations):")
    scenarios["dram_resident"] = bench_end_to_end(
        "dram_resident", resident_trace, base_open(), repeats)
    scenarios["writeback_storm"] = bench_end_to_end(
        "writeback_storm", storm_trace, eager_writeback_system(), repeats)
    for scenario_name in ("antagonist-burst", "tenant-colocation"):
        scenario = get_scenario(scenario_name, scale=scenario_scale)
        chunks = list(iter_scenario_chunks(scenario, seed=SEED))
        for config in (base_open(), bump_system()):
            key = f"{scenario_name}/{config.name}"
            scenarios[key] = bench_end_to_end(
                key, chunks, config, repeats,
                num_accesses=scenario.total_accesses)

    payload = {
        "benchmark": "dram",
        "version": __version__,
        "mode": "smoke" if args.smoke else "full",
        "num_cores": CORES,
        "seed": SEED,
        "engines": {
            "object": "request-object MemorySystem + per-channel controllers",
            "flat": "flat-array engine: NumPy state, ring-buffer queues, "
                    "batched enqueue_block_batch intake",
        },
        "scenarios": scenarios,
    }
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")

    failures = []
    for name, row in scenarios.items():
        if not row["results_identical"]:
            failures.append(f"{name}: engines diverged (parity broken)")
        if row["speedup"] <= 1.0:
            failures.append(
                f"{name}: flat engine not faster than object "
                f"({row['speedup']:.2f}x)")
    if not args.smoke:
        replay_best = max(scenarios["replay_random"]["speedup"],
                          scenarios["replay_bulk"]["speedup"])
        if replay_best < 2.0:
            failures.append(
                f"engine replay speedup {replay_best:.2f}x below the "
                "2x memory-bound target")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
