"""Figure 12 -- BuMP's on-chip bandwidth and energy overheads.

BuMP is not free on chip: bulk requests, overfetched data, eager writebacks,
PC-extended requests and the notifications forwarded to its tables add LLC
and NOC traffic.  The paper measures ~10% extra LLC traffic, ~11% extra NOC
traffic, and single-digit-percent energy overheads -- negligible next to the
memory energy savings.  This benchmark regenerates the normalised LLC/NOC
traffic and energy of BuMP, plus the storage/power budget of its structures
(Section V.F).
"""

from conftest import run_once

from repro.analysis import paper_data
from repro.analysis.experiments import figure12_onchip_overheads
from repro.analysis.reporting import format_nested_mapping, print_report
from repro.core.bump import BuMPPredictor


def test_figure12_onchip_overheads(benchmark, workloads):
    table = run_once(benchmark, figure12_onchip_overheads, workloads)

    print_report(format_nested_mapping(
        table, value_format="{:.2f}",
        title="Figure 12: BuMP LLC/NOC traffic and energy (normalised to Base-open)",
        columns=["llc_traffic", "llc_energy", "noc_traffic", "noc_energy"]))

    for workload, row in table.items():
        # Overheads exist but stay modest (the paper reports ~10-13%).
        assert 1.0 <= row["llc_traffic"] < 1.8, workload
        assert 1.0 <= row["noc_traffic"] < 1.8, workload
        assert row["llc_energy"] < 1.8, workload
        assert row["noc_energy"] < 1.9, workload


def test_bump_storage_budget(benchmark):
    """Section IV.D / V.F: ~14KB of storage across BuMP's four tables."""
    predictor = run_once(benchmark, BuMPPredictor)
    storage_kb = predictor.storage_bits() / 8 / 1024
    assert abs(storage_kb - paper_data.BUMP_STORAGE_KB) < 3.0
