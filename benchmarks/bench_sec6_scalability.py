"""Section VI -- design scalability and virtualization storage budgets.

No simulation is involved: the benchmark instantiates the scaled BuMP
structures and measures their storage, reproducing the numbers the section
quotes (the ~14KB native design, the 72KB bulk history table and ~5KB per
core under one-workload-per-core consolidation) and the linear-growth claims.
"""

from conftest import run_once

from repro.analysis.reporting import format_table, print_report
from repro.analysis.scalability import (
    scaling_summary,
    storage_scaling_table,
    virtualization_storage_table,
)


def test_storage_scaling_with_cores(benchmark):
    table = run_once(benchmark, storage_scaling_table, (16, 32, 64, 128))

    rows = [[str(e.cores), f"{e.llc_mib:.0f}", f"{e.rdtt_kib:.1f}", f"{e.bht_kib:.1f}",
             f"{e.drt_kib:.1f}", f"{e.total_kib:.1f}", f"{e.per_core_kib:.2f}"]
            for e in table]
    print_report("Section VI: BuMP storage vs CMP size\n" + format_table(
        rows, headers=["cores", "LLC MiB", "RDTT KiB", "BHT KiB", "DRT KiB",
                       "total KiB", "KiB/core"]))

    totals = [entry.total_kib for entry in table]
    per_core = [entry.per_core_kib for entry in table]
    # Total storage grows with the machine, per-core cost stays bounded.
    assert totals == sorted(totals)
    assert max(per_core) < 3.0


def test_virtualization_storage(benchmark):
    table = run_once(benchmark, virtualization_storage_table, 16, (1, 2, 4, 8, 16))

    rows = [[str(e.workloads_sharing), f"{e.bht_kib:.1f}", f"{e.total_kib:.1f}",
             f"{e.per_core_kib:.2f}"] for e in table]
    print_report("Section VI: BuMP storage vs consolidated workloads\n" + format_table(
        rows, headers=["workloads", "BHT KiB", "total KiB", "KiB/core"]))

    summary = scaling_summary()
    # Native design lands near the ~14KB of Section IV.D.
    assert 10.0 < summary["native_total_kib"] < 20.0
    # Extreme consolidation: ~72KB BHT, ~5KB of BuMP storage per core.
    assert 50.0 < summary["virtualized_bht_kib"] < 95.0
    assert 3.0 < summary["virtualized_per_core_kib"] < 8.0
