"""Figure 3 -- DRAM accesses broken down into reads and writes.

The paper reports that DRAM writes (LLC writebacks) account for 21-38% of
memory traffic, which is why a mechanism that only improves the locality of
load-triggered reads (like SMS) leaves much of the opportunity unexploited.
This benchmark regenerates the per-workload decomposition into
load-triggered reads, store-triggered reads and writes.
"""

from conftest import run_once

from repro.analysis import paper_data
from repro.analysis.experiments import figure3_traffic_breakdown
from repro.analysis.reporting import format_nested_mapping, print_report


def test_figure3_traffic_breakdown(benchmark, workloads):
    table = run_once(benchmark, figure3_traffic_breakdown, workloads)

    print_report(format_nested_mapping(
        table,
        value_format="{:.2f}",
        title="Figure 3: DRAM access mix (load reads / store reads / writes)",
        columns=["load_reads", "store_reads", "writes"],
    ))

    low, high = paper_data.WRITE_TRAFFIC_SHARE_RANGE
    for workload, mix in table.items():
        total = sum(mix.values())
        assert abs(total - 1.0) < 1e-6
        # Writes are a significant share of traffic for every workload, in or
        # near the paper's 21-38% band.
        assert mix["writes"] > 0.12, f"write share too small for {workload}"
        assert mix["writes"] < high + 0.12, f"write share too large for {workload}"
        # Store-triggered reads exist (they are the part SMS ignores).
        assert mix["store_reads"] > 0.05
