"""Figure 9 -- memory energy per access.

The headline energy result: BuMP reduces dynamic memory energy per access by
23% versus the open-row baseline and 34% versus the close-row baseline, while
Full-region streaming is the *worst* configuration on several workloads
because its overfetch multiplies both activations and transfers.  This
benchmark regenerates the per-workload activation + burst/IO bars for the
four systems of the figure.
"""

from conftest import run_once

from repro.analysis import paper_data
from repro.analysis.experiments import figure9_energy_per_access
from repro.analysis.reporting import format_nested_mapping, print_report


def test_figure9_energy_per_access(benchmark, workloads):
    table = run_once(benchmark, figure9_energy_per_access, workloads)

    normalized = {
        workload: {name: entry["normalized"] for name, entry in row.items()}
        for workload, row in table.items()
    }
    print_report(format_nested_mapping(
        normalized, value_format="{:.2f}",
        title="Figure 9: memory energy per access normalised to Base-close",
        columns=["base_close", "base_open", "full_region", "bump"]))

    for workload, row in table.items():
        assert row["base_close"]["normalized"] == 1.0
        # Open-row with region interleaving saves energy over close-row.
        assert row["base_open"]["normalized"] < 1.0, workload
        # BuMP is the most efficient of the four systems.
        assert row["bump"]["normalized"] < row["base_open"]["normalized"], workload
        # Full-region's overfetch makes it the least efficient system.
        assert row["full_region"]["normalized"] > row["bump"]["normalized"], workload

    avg_bump_vs_open = 1.0 - (
        sum(row["bump"]["total_nj"] for row in table.values())
        / sum(row["base_open"]["total_nj"] for row in table.values())
    )
    # Paper: 23% reduction versus Base-open; accept a generous band.
    assert 0.10 < avg_bump_vs_open < 0.45
    assert paper_data.BUMP_ENERGY_REDUCTION_VS_OPEN == 0.23
