"""Figure 13 -- cross-system summary of row-buffer locality and energy.

The paper's closing comparison averages across workloads: the open-row
baseline reaches a 21% row-buffer hit ratio, SMS 30%, VWQ 36%, SMS+VWQ 44%,
BuMP 55% and the ideal system 77%, with memory energy per access falling
accordingly (BuMP within 73% of ideal).  This benchmark regenerates both
panels for every evaluated system.
"""

from conftest import run_once

from repro.analysis import paper_data
from repro.analysis.experiments import figure13_summary
from repro.analysis.reporting import format_comparison, format_nested_mapping, print_report

ORDER = ["base_close", "base_open", "sms", "vwq", "sms_vwq", "bump", "ideal"]


def test_figure13_summary(benchmark, workloads):
    summary = run_once(benchmark, figure13_summary, workloads)

    print_report(format_nested_mapping(
        {name: summary[name] for name in ORDER},
        value_format="{:.3f}",
        title="Figure 13: workload-averaged row-buffer hit ratio and memory energy",
        columns=["row_buffer_hit_ratio", "energy_per_access_nj", "energy_normalized"]))
    print_report(format_comparison(
        {name: summary[name]["row_buffer_hit_ratio"] for name in ORDER if name != "base_close"},
        paper_data.ROW_BUFFER_HIT_RATIO_AVG,
        title="Row-buffer hit ratio vs. paper (averaged across workloads)"))

    hits = {name: summary[name]["row_buffer_hit_ratio"] for name in ORDER}
    energy = {name: summary[name]["energy_per_access_nj"] for name in ORDER}

    # Row-buffer locality ordering of the paper's Figure 13.
    assert hits["base_open"] < hits["sms"] < hits["bump"]
    assert hits["vwq"] > hits["base_open"]
    assert hits["sms_vwq"] >= hits["sms"]
    assert hits["sms_vwq"] >= hits["vwq"] - 0.03
    assert hits["bump"] > hits["sms_vwq"]
    assert hits["ideal"] >= hits["bump"] - 0.02

    # Energy ordering follows locality: BuMP beats every realisable baseline
    # and only the oracle does better.
    assert energy["bump"] < energy["sms"]
    assert energy["bump"] < energy["vwq"]
    assert energy["bump"] < energy["sms_vwq"]
    assert energy["ideal"] <= energy["bump"] + 0.5
    assert energy["bump"] < energy["base_open"] < energy["base_close"]
