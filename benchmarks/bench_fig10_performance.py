"""Figure 10 -- system performance improvement over Base-close.

The paper reports that Base-open is 1-2% slower than Base-close (it delays
precharges), that BuMP outperforms Base-close by 9% and Base-open by 11%
(bulk transfers act as prefetches), and that Full-region streaming *hurts*
performance by 67% on average (up to ~4x for Data Serving) because it
oversaturates memory bandwidth.  This benchmark regenerates those series.

Known fidelity limit (documented in EXPERIMENTS.md): the analytic timing
model reproduces the ordering and the Full-region collapse, but BuMP's gain
over the baselines is smaller than the paper's because the synthetic traces
leave the cores less stall-bound than CloudSuite on the authors' testbed.
"""

from conftest import run_once

from repro.analysis import paper_data
from repro.analysis.experiments import figure10_performance
from repro.analysis.reporting import format_nested_mapping, print_report


def test_figure10_performance(benchmark, workloads):
    table = run_once(benchmark, figure10_performance, workloads)

    print_report(format_nested_mapping(
        table, value_format="{:+.2%}",
        title="Figure 10: throughput improvement over Base-close",
        columns=["base_open", "full_region", "bump"]))

    slowdowns = [row["full_region"] for row in table.values()]
    bump_gains = [row["bump"] for row in table.values()]
    open_deltas = [row["base_open"] for row in table.values()]

    # Full-region oversaturates bandwidth and collapses on every workload.
    assert all(value < -0.25 for value in slowdowns)
    assert sum(slowdowns) / len(slowdowns) < paper_data.FULL_REGION_SLOWDOWN + 0.35
    # Base-open is within a few percent of Base-close.
    assert all(abs(value) < 0.12 for value in open_deltas)
    # BuMP never collapses and beats the open-row baseline on average.
    assert all(value > -0.20 for value in bump_gains)
    avg_bump_over_open = sum(
        row["bump"] - row["base_open"] for row in table.values()
    ) / len(table)
    assert avg_bump_over_open > 0.0
