"""Figure 5 -- region access density of DRAM reads and writes.

Section III's central characterisation: for 1KB regions, the majority of
DRAM reads (57-75%) and writes (62-86%) fall into high-density regions --
regions in which at least half of the sixteen blocks are touched between the
first access and the first LLC eviction.  This benchmark regenerates the
low/medium/high split per workload for both reads and writes.
"""

from conftest import run_once

from repro.analysis import paper_data
from repro.analysis.experiments import figure5_region_density
from repro.analysis.reporting import format_nested_mapping, print_report


def test_figure5_region_density(benchmark, workloads):
    table = run_once(benchmark, figure5_region_density, workloads)

    reads = {wl: entry["reads"] for wl, entry in table.items()}
    writes = {wl: entry["writes"] for wl, entry in table.items()}
    print_report(format_nested_mapping(
        reads, value_format="{:.2f}",
        title="Figure 5 (reads): region access density shares",
        columns=["low", "medium", "high"]))
    print_report(format_nested_mapping(
        writes, value_format="{:.2f}",
        title="Figure 5 (writes): region access density shares",
        columns=["low", "medium", "high"]))

    for workload, entry in table.items():
        read_high = entry["reads"]["high"]
        write_high = entry["writes"]["high"]
        assert abs(sum(entry["reads"].values()) - 1.0) < 1e-6
        assert abs(sum(entry["writes"].values()) - 1.0) < 1e-6
        # Bimodality: high-density regions dominate reads and writes, with a
        # non-trivial low-density component (hashed lookups etc.).
        assert read_high > 0.40, f"read high-density share too low for {workload}"
        assert write_high > 0.50, f"write high-density share too low for {workload}"
        assert entry["reads"]["low"] > 0.05

    avg_high_reads = sum(e["reads"]["high"] for e in table.values()) / len(table)
    low, high = paper_data.READ_HIGH_DENSITY_RANGE
    assert low - 0.15 <= avg_high_reads <= high + 0.10
