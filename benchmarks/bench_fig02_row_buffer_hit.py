"""Figure 2 -- DRAM row-buffer hit ratio of baseline systems.

The paper shows that the open-row baseline exploits only a small fraction of
the row-buffer locality the access stream contains (21% on average), that SMS
and VWQ recover some of it (30% / 36%), and that an ideal system that serves
every access a region generates during one LLC lifetime from a single
activation would reach 77%.  This benchmark regenerates those four bars per
workload.
"""

from conftest import run_once

from repro.analysis import paper_data
from repro.analysis.experiments import figure2_row_buffer_hit
from repro.analysis.reporting import format_nested_mapping, print_report


def test_figure2_row_buffer_hit_ratio(benchmark, workloads):
    table = run_once(benchmark, figure2_row_buffer_hit, workloads)

    print_report(format_nested_mapping(
        table,
        value_format="{:.2f}",
        title="Figure 2: DRAM row-buffer hit ratio (Base-open, SMS, VWQ, Ideal)",
        columns=["base_open", "sms", "vwq", "ideal"],
    ))

    averages = {
        name: sum(row[name] for row in table.values()) / len(table)
        for name in ("base_open", "sms", "vwq", "ideal")
    }
    # Shape checks from the paper: the baseline leaves most locality on the
    # table, SMS and VWQ help, and the ideal system towers over all of them.
    assert averages["base_open"] < 0.40
    assert averages["sms"] > averages["base_open"]
    assert averages["vwq"] > averages["base_open"]
    assert averages["ideal"] > averages["vwq"]
    assert averages["ideal"] > 0.45
    # Reference values for the reader (not asserted exactly).
    assert paper_data.ROW_BUFFER_HIT_RATIO_AVG["ideal"] == 0.77
