"""Figure 8 -- prediction accuracy of BuMP versus Full-region streaming.

Left panel of the paper: BuMP predicts 45-55% of DRAM reads (28% for
Software Testing) with 5-22% overfetch, while indiscriminate Full-region
streaming gains little coverage but multiplies read traffic (4.3x overfetch
on average).  Right panel: BuMP streams about 63% of DRAM writes with under
10% extra writeback traffic, while Full-region adds roughly 22% extra
writebacks.  This benchmark regenerates all four series.
"""

from conftest import run_once

from repro.analysis import paper_data
from repro.analysis.experiments import figure8_prediction_accuracy
from repro.analysis.reporting import format_nested_mapping, print_report


def test_figure8_prediction_accuracy(benchmark, workloads):
    table = run_once(benchmark, figure8_prediction_accuracy, workloads)

    bump_rows = {wl: entry["bump"] for wl, entry in table.items()}
    full_rows = {wl: entry["full_region"] for wl, entry in table.items()}
    columns = ["read_coverage", "read_overfetch", "write_coverage", "extra_writebacks"]
    print_report(format_nested_mapping(
        bump_rows, value_format="{:.2f}",
        title="Figure 8 (BuMP): coverage and waste", columns=columns))
    print_report(format_nested_mapping(
        full_rows, value_format="{:.2f}",
        title="Figure 8 (Full-region): coverage and waste", columns=columns))

    for workload, entry in table.items():
        bump = entry["bump"]
        full = entry["full_region"]
        # BuMP covers a substantial fraction of reads and writes...
        assert bump["read_coverage"] > 0.25, workload
        assert bump["write_coverage"] > 0.25, workload
        # ...at bounded waste.
        assert bump["read_overfetch"] < 0.6, workload
        # Full-region trades a little extra coverage for massive overfetch.
        assert full["read_coverage"] >= bump["read_coverage"] - 0.10, workload
        assert full["read_overfetch"] > 3 * bump["read_overfetch"], workload
        assert full["read_overfetch"] > 1.0, workload

    avg_bump_cov = sum(e["bump"]["read_coverage"] for e in table.values()) / len(table)
    low, _high = paper_data.BUMP_READ_COVERAGE_RANGE
    assert avg_bump_cov > low
