"""Figure 1 -- server energy breakdown by component.

The paper motivates BuMP by showing that main memory consumes 48-62% of
server energy on the baseline system, with page activations a major part of
the dynamic component.  This benchmark regenerates the stacked-bar data:
per-workload energy shares of cores, LLC, NOC, memory controllers and memory
(activation / burst&IO / background).
"""

from conftest import run_once

from repro.analysis import paper_data
from repro.analysis.experiments import figure1_energy_breakdown
from repro.analysis.reporting import format_nested_mapping, print_report


def test_figure1_energy_breakdown(benchmark, workloads):
    shares = run_once(benchmark, figure1_energy_breakdown, workloads)

    print_report(format_nested_mapping(
        shares,
        value_format="{:.2f}",
        title="Figure 1: server energy shares by component (Base-open)",
        columns=["cores", "llc", "noc", "memory_controller",
                 "memory_activation", "memory_burst_io", "memory_background"],
    ))

    low, high = paper_data.MEMORY_ENERGY_SHARE_RANGE
    for workload, breakdown in shares.items():
        memory_share = (breakdown["memory_activation"] + breakdown["memory_burst_io"]
                        + breakdown["memory_background"])
        # The paper reports memory at 48-62% of server energy; the synthetic
        # substrate must at least make memory a first-order consumer.
        assert memory_share > 0.25, f"memory share implausibly low for {workload}"
        assert memory_share < 0.9, f"memory share implausibly high for {workload}"
