"""Ablation: memory-controller choices BuMP depends on.

Two design decisions of Section IV.D / VI are quantified:

* **Address interleaving** -- BuMP maps a 1KB region onto one DRAM row
  (region-level interleaving).  Running the identical predictor with
  block-level interleaving shows how much of the benefit comes from the
  mapping rather than the prediction.
* **Scheduling policy** -- Section VI argues BuMP composes with fairness-
  oriented scheduling.  The study compares FR-FCFS against strict FCFS and a
  core-rotating (fair-queuing-style) scheduler under BuMP.
"""

from conftest import bench_workers, run_once

from repro.analysis.ablations import interleaving_sensitivity, scheduler_policy_study
from repro.analysis.reporting import format_nested_mapping, print_report

ABLATION_WORKLOADS = ["data_serving", "web_search", "web_serving"]


def test_interleaving_sensitivity(benchmark, workloads):
    selected = [name for name in workloads if name in ABLATION_WORKLOADS] or workloads
    table = run_once(benchmark, interleaving_sensitivity, selected,
                     workers=bench_workers())

    print_report(format_nested_mapping(
        table, value_format="{:.3f}",
        title="BuMP with region-level vs block-level address interleaving",
        columns=["row_buffer_hit_ratio", "energy_per_access_nj"]))

    # Mapping a region to a single row is what lets bulk transfers amortise
    # activations: block interleaving forfeits both locality and energy.
    assert (table["region"]["row_buffer_hit_ratio"]
            > table["block"]["row_buffer_hit_ratio"])
    assert (table["region"]["energy_per_access_nj"]
            < table["block"]["energy_per_access_nj"])


def test_scheduler_policy_study(benchmark, workloads):
    selected = [name for name in workloads if name in ABLATION_WORKLOADS] or workloads
    table = run_once(benchmark, scheduler_policy_study,
                     ("fcfs", "frfcfs", "bank_round_robin"), selected,
                     workers=bench_workers())

    print_report(format_nested_mapping(
        table, value_format="{:.3f}",
        title="BuMP under different transaction scheduling policies",
        columns=["row_buffer_hit_ratio", "energy_per_access_nj"]))

    # FR-FCFS harvests the most row locality (it reorders for open rows and
    # BuMP's bulk transfers arrive back-to-back, so plain FCFS is close).
    assert (table["frfcfs"]["row_buffer_hit_ratio"]
            >= table["fcfs"]["row_buffer_hit_ratio"] - 0.02)
    assert (table["frfcfs"]["row_buffer_hit_ratio"]
            >= table["bank_round_robin"]["row_buffer_hit_ratio"] - 0.02)
    # The fairness-oriented rotating scheduler gives up some locality by
    # interleaving cores, but keeps the majority of FR-FCFS's row hits --
    # which is why Section VI argues such policies compose with BuMP.
    assert (table["bank_round_robin"]["row_buffer_hit_ratio"]
            >= 0.5 * table["frfcfs"]["row_buffer_hit_ratio"])
