"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  The
modules share an in-process result cache (see
:mod:`repro.analysis.experiments`), so the whole suite costs roughly one
simulation per (workload, system configuration) pair even though several
figures consume the same runs.

Two environment variables control the fidelity/runtime trade-off:

* ``REPRO_EXPERIMENT_ACCESSES`` -- trace length per run (default 240000);
* ``REPRO_BENCH_WORKLOADS`` -- comma-separated subset of workloads to run
  (default: all six of the paper).
"""

from __future__ import annotations

import os
from typing import List

import pytest

from repro.workloads.catalog import workload_names


def selected_workloads() -> List[str]:
    """Workloads the harness should evaluate (env-var overridable)."""
    raw = os.environ.get("REPRO_BENCH_WORKLOADS", "")
    if not raw.strip():
        return workload_names()
    requested = [name.strip() for name in raw.split(",") if name.strip()]
    known = set(workload_names())
    unknown = [name for name in requested if name not in known]
    if unknown:
        raise ValueError(f"unknown workloads in REPRO_BENCH_WORKLOADS: {unknown}")
    return requested


@pytest.fixture(scope="session")
def workloads() -> List[str]:
    """The workload list shared by every benchmark module."""
    return selected_workloads()


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark.

    The experiments are deterministic end-to-end simulations, so a single
    round is both sufficient and necessary (re-running them would only hit
    the result cache and measure dictionary lookups).
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
