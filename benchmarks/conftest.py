"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  The
modules share an in-process result cache (see
:mod:`repro.analysis.experiments`), so the whole suite costs roughly one
simulation per (workload, system configuration) pair even though several
figures consume the same runs.

Four environment variables control the fidelity/runtime trade-off:

* ``REPRO_EXPERIMENT_ACCESSES`` -- trace length per run (default 240000);
* ``REPRO_BENCH_WORKLOADS`` -- comma-separated subset of workloads to run
  (default: all six of the paper);
* ``REPRO_BENCH_WORKERS`` -- when > 1, the whole (workload x system) matrix
  is precomputed as one parallel campaign (:mod:`repro.exec`) before the
  first benchmark runs, so each benchmark only aggregates;
* ``REPRO_ARTIFACT_DIR`` -- on-disk artifact store; a second harness run
  against the same directory re-simulates nothing.
"""

from __future__ import annotations

import os
from typing import List

import pytest

from repro.workloads.catalog import workload_names


def selected_workloads() -> List[str]:
    """Workloads the harness should evaluate (env-var overridable)."""
    raw = os.environ.get("REPRO_BENCH_WORKLOADS", "")
    if not raw.strip():
        return workload_names()
    requested = [name.strip() for name in raw.split(",") if name.strip()]
    known = set(workload_names())
    unknown = [name for name in requested if name not in known]
    if unknown:
        raise ValueError(f"unknown workloads in REPRO_BENCH_WORKLOADS: {unknown}")
    return requested


@pytest.fixture(scope="session")
def workloads() -> List[str]:
    """The workload list shared by every benchmark module."""
    return selected_workloads()


def bench_workers() -> int:
    """Worker processes the harness may use (``REPRO_BENCH_WORKERS``)."""
    raw = os.environ.get("REPRO_BENCH_WORKERS", "").strip() or "1"
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(f"REPRO_BENCH_WORKERS must be an integer, got {raw!r}")


@pytest.fixture(scope="session", autouse=True)
def campaign_precompute(request) -> None:
    """Optionally fan the benchmark matrices out across worker processes.

    With ``REPRO_BENCH_WORKERS`` > 1 the paper's (workload x system) grid and
    the Figure 11 design-space grid are simulated up front by parallel
    campaigns; their results seed the shared in-process cache (and the
    artifact store when ``REPRO_ARTIFACT_DIR`` is set), so the figure
    benchmarks measure aggregation over warm results instead of serial
    simulation time.  The ablation benchmarks pass ``workers=bench_workers()``
    to their studies, which precompute their own grids the same way.

    Each grid is only simulated when a collected benchmark consumes it, so
    ablation-only runs skip both grids entirely.  Figure benchmarks share the
    full matrix (single-figure filtered runs still precompute all eight
    systems; leave ``REPRO_BENCH_WORKERS`` unset for those).
    """
    workers = bench_workers()
    if workers <= 1:
        return
    collected = {item.location[0].replace("\\", "/").rsplit("/", 1)[-1]
                 for item in request.session.items}
    wants_design_space = "bench_fig11_design_space.py" in collected
    wants_matrix = any(
        name.startswith(("bench_fig", "bench_tab"))
        and name != "bench_fig11_design_space.py"
        for name in collected
    )
    if not (wants_matrix or wants_design_space):
        return
    from repro.analysis.experiments import (
        design_space_accesses,
        precompute_design_space,
        run_experiment_campaign,
    )

    if wants_matrix:
        run_experiment_campaign(selected_workloads(), workers=workers)
    if wants_design_space:
        # Mirrors bench_fig11_design_space's trace length so its cells hit.
        precompute_design_space(selected_workloads(),
                                num_accesses=design_space_accesses(),
                                workers=workers)


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark.

    The experiments are deterministic end-to-end simulations, so a single
    round is both sufficient and necessary (re-running them would only hit
    the result cache and measure dictionary lookups).
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
