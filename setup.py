"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so the
package can be installed in editable mode (``pip install -e .``) on
environments whose setuptools/pip combination lacks the ``wheel`` package
required by PEP 660 editable builds (pip then falls back to the legacy
``setup.py develop`` path).
"""

from setuptools import setup

setup()
