"""Tests for trace persistence (CSV and NPZ round-trips)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.request import Access, AccessType
from repro.trace.io import load_trace, save_trace
from repro.workloads.catalog import get_workload
from repro.workloads.generator import generate_trace


def make_trace():
    return [
        Access(core=0, pc=0x400010, address=0x1234_5678, type=AccessType.LOAD,
               instructions=3),
        Access(core=5, pc=0x500020, address=0xdead_beef & ~0x7, type=AccessType.STORE,
               instructions=12),
        Access(core=15, pc=0x600030, address=0, type=AccessType.LOAD, instructions=1),
    ]


@pytest.mark.parametrize("suffix", [".csv", ".txt", ".npz"])
def test_round_trip_preserves_every_field(tmp_path, suffix):
    trace = make_trace()
    path = save_trace(trace, tmp_path / f"trace{suffix}")
    loaded = load_trace(path)
    assert loaded == trace


def test_csv_file_is_human_readable(tmp_path):
    path = save_trace(make_trace(), tmp_path / "trace.csv")
    text = path.read_text()
    assert text.startswith("# core,pc,address,type,instructions")
    assert "0x400010" in text
    assert ",S," in text and ",L," in text


def test_unknown_extension_is_rejected(tmp_path):
    with pytest.raises(ValueError):
        save_trace(make_trace(), tmp_path / "trace.parquet")
    with pytest.raises(ValueError):
        path = tmp_path / "trace.bin"
        path.write_text("junk")
        load_trace(path)


def test_missing_file_raises_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_trace(tmp_path / "absent.csv")


def test_malformed_csv_row_is_rejected(tmp_path):
    path = tmp_path / "broken.csv"
    path.write_text("# core,pc,address,type,instructions\n1,0x10,0x40,L\n")
    with pytest.raises(ValueError):
        load_trace(path)


def test_unknown_access_type_is_rejected(tmp_path):
    path = tmp_path / "broken.csv"
    path.write_text("# header\n1,0x10,0x40,X,2\n")
    with pytest.raises(ValueError):
        load_trace(path)


def test_npz_with_missing_arrays_is_rejected(tmp_path):
    import numpy as np

    path = tmp_path / "broken.npz"
    np.savez(path, core=np.array([1]))
    with pytest.raises(ValueError):
        load_trace(path)


def test_empty_trace_round_trips(tmp_path):
    for suffix in (".csv", ".npz"):
        path = save_trace([], tmp_path / f"empty{suffix}")
        assert load_trace(path) == []


def test_generated_workload_trace_round_trips_through_npz(tmp_path):
    spec = get_workload("web_search")
    trace = generate_trace(spec, 2_000, num_cores=4, seed=11)
    loaded = load_trace(save_trace(trace, tmp_path / "ws.npz"))
    assert loaded == trace


@settings(max_examples=25, deadline=None)
@given(
    records=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=63),
            st.integers(min_value=0, max_value=2**48 - 1),
            st.integers(min_value=0, max_value=2**48 - 1),
            st.booleans(),
            st.integers(min_value=1, max_value=1000),
        ),
        max_size=50,
    ),
    suffix=st.sampled_from([".csv", ".npz"]),
)
def test_property_round_trip_is_identity(tmp_path_factory, records, suffix):
    trace = [
        Access(core=core, pc=pc, address=address,
               type=AccessType.STORE if store else AccessType.LOAD,
               instructions=instructions)
        for core, pc, address, store, instructions in records
    ]
    path = tmp_path_factory.mktemp("traces") / f"t{suffix}"
    assert load_trace(save_trace(trace, path)) == trace
