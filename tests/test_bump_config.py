"""Unit tests for the BuMP configuration (Section IV.D parameters)."""

import pytest

from repro.core.config import BuMPConfig


def test_default_configuration_matches_paper():
    config = BuMPConfig()
    assert config.region_size_bytes == 1024
    assert config.blocks_per_region == 16
    assert config.density_threshold_blocks == 8
    assert config.density_threshold_fraction == pytest.approx(0.5)
    assert config.offset_bits == 4
    assert config.trigger_entries == 256
    assert config.density_entries == 256
    assert config.bht_entries == 1024
    assert config.drt_entries == 1024
    assert config.associativity == 16


def test_invalid_configurations_rejected():
    with pytest.raises(ValueError):
        BuMPConfig(region_size_bytes=1000)
    with pytest.raises(ValueError):
        BuMPConfig(region_size_bytes=64)
    with pytest.raises(ValueError):
        BuMPConfig(density_threshold_blocks=0)
    with pytest.raises(ValueError):
        BuMPConfig(density_threshold_blocks=17)


def test_threshold_fraction_helper():
    config = BuMPConfig().with_threshold_fraction(0.25)
    assert config.density_threshold_blocks == 4
    full = BuMPConfig().with_threshold_fraction(1.0)
    assert full.density_threshold_blocks == 16


def test_region_size_sweep_preserves_threshold_fraction():
    """Figure 11 sweeps the region size holding the fractional threshold."""
    base = BuMPConfig(density_threshold_blocks=8)
    small = base.with_region_size(512)
    large = base.with_region_size(2048)
    assert small.blocks_per_region == 8 and small.density_threshold_blocks == 4
    assert large.blocks_per_region == 32 and large.density_threshold_blocks == 16


def test_region_and_offset_mapping():
    config = BuMPConfig()
    assert config.region_of(0) == 0
    assert config.region_of(1024) == 1
    assert config.offset_of(1024 + 5 * 64) == 5
    blocks = config.region_blocks(2)
    assert blocks[0] == 2048 and blocks[-1] == 2048 + 960 and len(blocks) == 16


def test_region_blocks_for_512_byte_regions():
    config = BuMPConfig(region_size_bytes=512, density_threshold_blocks=4)
    assert len(config.region_blocks(0)) == 8
    assert config.offset_bits == 3
