"""Unit tests for system configurations and the analytic timing model."""

import pytest

from repro.common.params import SystemParams
from repro.dram.controller import PagePolicy
from repro.sim.config import (
    base_close,
    base_open,
    bump_system,
    full_region_system,
    ideal_system,
    named_configs,
    sms_system,
    sms_vwq_system,
    vwq_system,
)
from repro.sim.timing import TimingModel


# --------------------------------------------------------------------- #
# Configurations
# --------------------------------------------------------------------- #
def test_named_configs_cover_every_evaluated_system():
    configs = named_configs()
    assert set(configs) == {
        "base_close", "base_open", "sms", "vwq", "sms_vwq",
        "full_region", "bump", "ideal",
    }
    with pytest.raises(KeyError):
        named_configs(["nonexistent"])


def test_base_close_uses_close_row_and_block_interleaving():
    config = base_close()
    assert config.page_policy is PagePolicy.CLOSE
    assert config.interleaving == "block"
    assert config.use_stride and not config.use_bump


def test_base_open_matches_bump_memory_controller():
    open_config = base_open()
    bump_config = bump_system()
    assert open_config.page_policy is bump_config.page_policy is PagePolicy.OPEN
    assert open_config.interleaving == bump_config.interleaving == "region"


def test_pc_is_carried_only_by_pc_indexed_predictor_configs():
    assert bump_system().carries_pc
    assert sms_system().carries_pc
    assert sms_vwq_system().carries_pc
    assert not base_open().carries_pc
    assert not vwq_system().carries_pc


def test_bump_replaces_stride_prefetcher():
    config = bump_system()
    assert config.use_bump and not config.use_stride
    assert config.uses_bulk_streaming
    assert full_region_system().uses_bulk_streaming
    assert not vwq_system().uses_bulk_streaming


def test_ideal_attaches_profiler():
    config = ideal_system()
    assert config.ideal_row_locality and config.attach_profiler


def test_with_overrides_builds_variants():
    config = bump_system().with_overrides(name="bump_small")
    assert config.name == "bump_small"
    assert config.use_bump


# --------------------------------------------------------------------- #
# Timing model
# --------------------------------------------------------------------- #
def make_summary(load_misses, covered=0.0, dram_elapsed=0.0, latency=30.0,
                 instructions=1_000_000.0):
    model = TimingModel(SystemParams())
    return model.summarize(
        instructions=instructions,
        load_demand_misses=load_misses,
        covered_loads=covered,
        llc_load_hits=0.0,
        average_dram_latency_bus_cycles=latency,
        dram_elapsed_bus_cycles=dram_elapsed,
    )


def test_more_misses_mean_fewer_instructions_per_cycle():
    fast = make_summary(load_misses=1_000)
    slow = make_summary(load_misses=20_000)
    assert slow.cycles > fast.cycles
    assert slow.throughput_ipc < fast.throughput_ipc


def test_covered_misses_are_cheaper_than_demand_misses():
    uncovered = make_summary(load_misses=10_000, covered=0)
    covered = make_summary(load_misses=2_000, covered=8_000)
    assert covered.cycles < uncovered.cycles


def test_bandwidth_bound_caps_throughput():
    unbound = make_summary(load_misses=1_000, dram_elapsed=0.0)
    bound = make_summary(load_misses=1_000, dram_elapsed=10 * unbound.cycles)
    assert bound.cycles > unbound.cycles
    assert bound.dram_bound_cycles == pytest.approx(
        10 * unbound.cycles * SystemParams().core_cycles_per_dram_cycle
    )


def test_stall_fraction_and_elapsed_time_consistency():
    summary = make_summary(load_misses=5_000)
    assert 0.0 < summary.stall_fraction < 1.0
    expected_seconds = summary.cycles * 0.4e-9
    assert summary.elapsed_seconds == pytest.approx(expected_seconds)


def test_zero_instruction_run_is_safe():
    summary = make_summary(load_misses=0, instructions=0.0)
    assert summary.throughput_ipc == 0.0
