"""Unit tests for the DRAM address interleaving schemes."""

import pytest

from repro.common.addressing import BLOCK_SIZE, REGION_SIZE
from repro.common.params import DRAMOrganization
from repro.dram.address_mapping import (
    AddressMapping,
    make_block_interleaving,
    make_region_interleaving,
)


def test_block_interleaving_spreads_consecutive_blocks():
    mapping = make_block_interleaving(DRAMOrganization())
    coords = [mapping.map(i * BLOCK_SIZE) for i in range(16)]
    # Consecutive blocks must not share a (channel, rank, bank, row) tuple.
    keys = {(c.channel, c.rank, c.bank, c.row) for c in coords}
    assert len(keys) == 16


def test_block_interleaving_alternates_channels():
    mapping = make_block_interleaving(DRAMOrganization())
    assert mapping.map(0).channel != mapping.map(BLOCK_SIZE).channel


def test_region_interleaving_keeps_region_in_one_row():
    mapping = make_region_interleaving(DRAMOrganization())
    base = 17 * REGION_SIZE
    coords = [mapping.map(base + i * BLOCK_SIZE) for i in range(16)]
    rows = {(c.channel, c.rank, c.bank, c.row) for c in coords}
    assert len(rows) == 1
    columns = {c.column for c in coords}
    assert len(columns) == 16


def test_region_interleaving_rotates_regions_across_channels():
    mapping = make_region_interleaving(DRAMOrganization())
    first = mapping.map(0)
    second = mapping.map(REGION_SIZE)
    assert first.channel != second.channel


def test_eight_regions_share_one_row_under_region_interleaving():
    # An 8KB row holds eight 1KB regions; regions that differ only in the
    # ColumnHigh bits map to the same row of the same bank.
    org = DRAMOrganization()
    mapping = make_region_interleaving(org)
    base_coords = mapping.map(0)
    regions_per_row = org.row_buffer_bytes // REGION_SIZE
    stride = REGION_SIZE * org.channels * org.banks_per_rank * org.ranks_per_channel
    same_row = [mapping.map(i * stride) for i in range(regions_per_row)]
    assert all(c.row == base_coords.row and c.bank == base_coords.bank
               and c.rank == base_coords.rank and c.channel == base_coords.channel
               for c in same_row)


def test_coordinates_within_bounds():
    org = DRAMOrganization()
    for mapping in (make_block_interleaving(org), make_region_interleaving(org)):
        for address in range(0, 64 * 1024 * 1024, 997 * BLOCK_SIZE):
            coords = mapping.map(address)
            assert 0 <= coords.channel < org.channels
            assert 0 <= coords.rank < org.ranks_per_channel
            assert 0 <= coords.bank < org.banks_per_rank
            assert 0 <= coords.column < org.row_buffer_bytes // BLOCK_SIZE


def test_mapping_is_injective_over_a_large_window():
    org = DRAMOrganization()
    mapping = make_region_interleaving(org)
    seen = set()
    for address in range(0, 8 * 1024 * 1024, BLOCK_SIZE):
        coords = mapping.map(address)
        key = (coords.channel, coords.rank, coords.bank, coords.row, coords.column)
        assert key not in seen
        seen.add(key)


def test_invalid_geometry_rejected():
    org = DRAMOrganization(channels=3)
    with pytest.raises(ValueError):
        AddressMapping(org, column_low_bits=0)
    with pytest.raises(ValueError):
        AddressMapping(DRAMOrganization(), column_low_bits=20)
