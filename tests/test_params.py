"""Unit tests for the architectural parameter dataclasses (Table II)."""

import pytest

from repro.common.params import (
    CacheParams,
    CoreParams,
    DDR3Timing,
    DRAMOrganization,
    SystemParams,
)


def test_default_system_matches_table_ii():
    params = SystemParams()
    assert params.num_cores == 16
    assert params.l1d.size_bytes == 32 * 1024
    assert params.l1d.associativity == 2
    assert params.llc.size_bytes == 4 * 1024 * 1024
    assert params.llc.associativity == 16
    assert params.llc.hit_latency_cycles == 8
    assert params.dram_org.channels == 2
    assert params.dram_org.ranks_per_channel == 4
    assert params.dram_org.banks_per_rank == 8
    assert params.dram_org.row_buffer_bytes == 8192


def test_core_cycle_time():
    core = CoreParams(frequency_ghz=2.5)
    assert core.cycle_time_ns == pytest.approx(0.4)


def test_cache_geometry_derivation():
    cache = CacheParams(size_bytes=4 * 1024 * 1024, associativity=16, block_size=64)
    assert cache.num_sets == 4096
    assert cache.num_blocks == 65536
    l1 = CacheParams(size_bytes=32 * 1024, associativity=2)
    assert l1.num_sets == 256


def test_cache_geometry_rejects_non_multiple():
    with pytest.raises(ValueError):
        CacheParams(size_bytes=1000, associativity=3, block_size=64)


def test_ddr3_timing_matches_table_ii():
    timing = DDR3Timing()
    assert (timing.tCAS, timing.tRCD, timing.tRP, timing.tRAS) == (11, 11, 11, 28)
    assert (timing.tRC, timing.tWR, timing.tWTR, timing.tRTP) == (39, 12, 6, 6)
    assert (timing.tRRD, timing.tFAW) == (5, 24)


def test_ddr3_latency_ordering():
    timing = DDR3Timing()
    assert timing.row_hit_latency < timing.row_miss_latency < timing.row_conflict_latency


def test_dram_organization_bank_count_and_bandwidth():
    org = DRAMOrganization()
    assert org.total_banks == 2 * 4 * 8
    # Two DDR3-1600 channels peak at 25.6 GB/s (Table II).
    assert org.peak_bandwidth_gbps == pytest.approx(25.6, rel=0.01)


def test_scaled_returns_modified_copy():
    params = SystemParams()
    smaller = params.scaled(num_cores=4)
    assert smaller.num_cores == 4
    assert params.num_cores == 16
    assert smaller.llc.size_bytes == params.llc.size_bytes
