"""Artifact store round-trips, corruption handling and LRU eviction."""

import os
import pickle

import pytest

from repro.common.request import Access
from repro.exec.campaign import result_fingerprint
from repro.exec.jobs import JobSpec
from repro.exec.pool import execute_job
from repro.exec.store import STORE_ENV_VAR, ArtifactStore, default_store
from repro.sim.config import base_open
from repro.sim.results import SimulationResult


def _small_trace(n=8):
    return [Access(core=0, pc=4096, address=64 * i) for i in range(n)]


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


class TestRoundTrip:
    def test_trace_round_trip(self, store):
        trace = _small_trace()
        store.put_trace("abc123", trace)
        loaded = store.get_trace("abc123")
        assert [a.address for a in loaded] == [a.address for a in trace]

    def test_result_round_trip_preserves_every_field(self, store, tmp_path):
        job = JobSpec(workload="web_search", config=base_open(),
                      num_accesses=1500, num_cores=2, seed=3, warmup_fraction=0.2)
        result = execute_job(job, store=None)
        store.put_result(job.result_fingerprint(), result)
        loaded = store.get_result(job.result_fingerprint())
        assert isinstance(loaded, SimulationResult)
        assert result_fingerprint(loaded) == result_fingerprint(result)
        assert loaded.summary() == result.summary()

    def test_missing_key_is_a_miss(self, store):
        assert store.get_result("0" * 32) is None
        assert store.stats()["misses"] == 1


class TestRobustness:
    def test_truncated_artifact_is_treated_as_miss_and_removed(self, store):
        digest = "a" * 32
        store.put_result(digest, SimulationResult(workload="w", config_name="c"))
        path = store._path("results", digest)
        path.write_bytes(path.read_bytes()[:10])
        assert store.get_result(digest) is None
        assert not path.exists()

    def test_wrong_format_version_is_treated_as_miss(self, store):
        digest = "b" * 32
        path = store._path("results", digest)
        with path.open("wb") as handle:
            pickle.dump((999, "payload"), handle)
        assert store.get_result(digest) is None
        assert store.counters["corrupt"] == 1

    def test_rejects_invalid_bounds(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path, max_entries=0)
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path, max_bytes=0)


class TestEviction:
    def test_max_entries_evicts_least_recently_used(self, store, tmp_path):
        bounded = ArtifactStore(tmp_path / "bounded", max_entries=3)
        digests = [f"{i:032x}" for i in range(4)]
        for index, digest in enumerate(digests):
            path = bounded._path("results", digest)
            bounded.put_result(digest, {"index": index})
            # Space the mtimes out so LRU order is unambiguous on coarse
            # filesystem timestamp granularity.
            os.utime(path, (1_000_000 + index, 1_000_000 + index))
        bounded.prune()
        assert bounded.entry_count() == 3
        assert bounded.get_result(digests[0]) is None  # oldest evicted
        assert bounded.get_result(digests[3]) is not None

    def test_max_bytes_bounds_total_size(self, tmp_path):
        bounded = ArtifactStore(tmp_path / "bytes", max_bytes=4096)
        for i in range(8):
            bounded.put_trace(f"{i:032x}", _small_trace(32))
        assert bounded.total_bytes() <= 4096

    def test_clear_removes_everything(self, store):
        store.put_trace("c" * 32, _small_trace())
        store.put_result("d" * 32, {"x": 1})
        store.clear()
        assert store.entry_count() == 0


class TestDefaultStore:
    def test_unset_env_gives_no_store(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert default_store() is None

    def test_env_configures_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "env-store"))
        store = default_store()
        assert store is not None
        assert store.root == tmp_path / "env-store"
        assert (tmp_path / "env-store" / "results").is_dir()

    def test_default_store_handle_is_memoized_per_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "memo-store"))
        first = default_store()
        assert default_store() is first
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "other-store"))
        assert default_store() is not first


class TestPruneOrdering:
    def test_lru_order_is_deterministic_within_one_second(self, tmp_path):
        """Sub-second recency must order eviction (st_mtime_ns, not st_mtime)."""
        bounded = ArtifactStore(tmp_path / "ns", max_entries=2)
        digests = [f"{i:032x}" for i in range(3)]
        base_ns = 1_000_000_000_000_000
        for index, digest in enumerate(digests):
            bounded.put_result(digest, {"index": index})
            path = bounded._path("results", digest)
            # All inside the same wall-clock second, microseconds apart.
            ns = base_ns + index * 1_000
            os.utime(path, ns=(ns, ns))
        bounded.prune()
        assert bounded.get_result(digests[0]) is None  # oldest by nanoseconds
        assert bounded.get_result(digests[1]) is not None
        assert bounded.get_result(digests[2]) is not None

    def test_exact_timestamp_ties_break_on_path(self, tmp_path):
        bounded = ArtifactStore(tmp_path / "tie", max_entries=1)
        digests = sorted(f"{i:032x}" for i in (7, 3))
        ns = 1_000_000_000_000_000
        for digest in digests:
            bounded.put_result(digest, {"digest": digest})
            os.utime(bounded._path("results", digest), ns=(ns, ns))
        bounded.prune()
        # Identical timestamps: the lexically-smaller path is "older".
        assert bounded.get_result(digests[0]) is None
        assert bounded.get_result(digests[1]) is not None

    def test_touch_failure_decrements_approximate_occupancy(self, tmp_path):
        bounded = ArtifactStore(tmp_path / "race", max_entries=8,
                                max_bytes=1 << 20)
        digest = "e" * 32
        bounded.put_result(digest, {"payload": list(range(64))})
        entries_before = bounded._approx_entries
        bytes_before = bounded._approx_bytes
        path = bounded._path("results", digest)
        size = path.stat().st_size
        # Simulate a racing pruner deleting the artifact between the read
        # and the recency touch.
        real_utime = os.utime

        def racing_utime(target, *args, **kwargs):
            if str(target) == str(path):
                path.unlink(missing_ok=True)
            return real_utime(target, *args, **kwargs)

        import unittest.mock as mock

        with mock.patch.object(os, "utime", racing_utime):
            payload = bounded.get_result(digest)
        assert payload == {"payload": list(range(64))}  # read won the race
        assert bounded._approx_entries == entries_before - 1
        assert bounded._approx_bytes == bytes_before - size

    def test_touch_failure_never_goes_negative(self, tmp_path):
        bounded = ArtifactStore(tmp_path / "floor", max_entries=2)
        bounded._approx_entries = 0
        bounded._approx_bytes = 0
        bounded._touch(tmp_path / "floor" / "results" / "missing.pkl", 4096)
        assert bounded._approx_entries == 0
        assert bounded._approx_bytes == 0


class TestObservabilityCounters:
    def test_stats_reports_every_counter(self, store):
        expected = {"hits", "misses", "stores", "puts", "evictions", "corrupt",
                    "prune_bytes_reclaimed", "touch_failures",
                    "entries", "bytes"}
        assert expected <= set(store.stats())

    def test_puts_and_hits_count_artifact_traffic(self, store):
        store.put_result("a" * 32, {"x": 1})
        store.put_trace("b" * 32, _small_trace())
        assert store.get_result("a" * 32) == {"x": 1}
        assert store.get_result("f" * 32) is None
        stats = store.stats()
        assert stats["puts"] == 2
        assert stats["puts"] == stats["stores"]  # "stores" predates "puts"
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_prune_accounts_reclaimed_bytes(self, tmp_path):
        bounded = ArtifactStore(tmp_path / "reclaim", max_entries=2)
        digests = [f"{i:032x}" for i in range(4)]
        for index, digest in enumerate(digests):
            bounded.put_result(digest, {"index": index})
        stats = bounded.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 2
        assert stats["prune_bytes_reclaimed"] > 0

    def test_touch_failures_are_counted(self, tmp_path):
        bounded = ArtifactStore(tmp_path / "count", max_entries=2)
        bounded._touch(tmp_path / "count" / "results" / "missing.pkl", 64)
        assert bounded.stats()["touch_failures"] == 1
