"""Unit tests for the crossbar NOC accounting."""

import pytest

from repro.noc.crossbar import MESSAGE_BYTES, Crossbar, MessageType


def test_send_accumulates_messages_and_bytes():
    noc = Crossbar()
    noc.send(MessageType.REQUEST)
    noc.send(MessageType.DATA, count=2)
    assert noc.total_messages == 3
    expected = MESSAGE_BYTES[MessageType.REQUEST] + 2 * MESSAGE_BYTES[MessageType.DATA]
    assert noc.total_bytes == expected


def test_send_ignores_non_positive_counts():
    noc = Crossbar()
    noc.send(MessageType.DATA, count=0)
    noc.send(MessageType.DATA, count=-5)
    assert noc.total_messages == 0


def test_pc_extended_requests_cost_more_bytes():
    assert MESSAGE_BYTES[MessageType.REQUEST_WITH_PC] > MESSAGE_BYTES[MessageType.REQUEST]


def test_utilization_bounded_and_monotonic():
    noc = Crossbar(num_cores=16, link_bytes_per_cycle=16.0)
    for _ in range(1000):
        noc.send(MessageType.DATA)
    low = noc.utilization(elapsed_cycles=1_000_000)
    high = noc.utilization(elapsed_cycles=1_000)
    assert 0.0 < low < high <= 1.0
    assert noc.utilization(0) == 0.0


def test_dynamic_energy_proportional_to_bytes():
    noc = Crossbar(energy_per_byte_nj=0.001)
    noc.send(MessageType.DATA, count=10)
    assert noc.dynamic_energy_nj() == pytest.approx(10 * MESSAGE_BYTES[MessageType.DATA] * 0.001)


def test_stats_view_and_reset():
    noc = Crossbar()
    noc.send(MessageType.REQUEST_WITH_PC, 4)
    stats = noc.stats
    assert stats["msgs_request_with_pc"] == 4
    assert stats["messages"] == 4
    noc.reset()
    assert noc.total_messages == 0
    assert noc.stats["messages"] == 0
