"""Unit tests for address arithmetic helpers."""

import pytest

from repro.common.addressing import (
    BLOCK_SIZE,
    BLOCKS_PER_REGION,
    REGION_SIZE,
    block_address,
    block_index_in_region,
    block_offset,
    blocks_of_region,
    region_address,
    region_base,
    region_offset_bits,
)


def test_block_alignment_masks_low_bits():
    assert block_address(0) == 0
    assert block_address(63) == 0
    assert block_address(64) == 64
    assert block_address(0x12345) == 0x12340


def test_block_offset_complements_alignment():
    for addr in (0, 1, 63, 64, 100, 0xFFFF):
        assert block_address(addr) + block_offset(addr) == addr


def test_region_constants_match_paper_configuration():
    assert REGION_SIZE == 1024
    assert BLOCK_SIZE == 64
    assert BLOCKS_PER_REGION == 16


def test_region_address_is_shift_by_region_bits():
    assert region_address(0) == 0
    assert region_address(1023) == 0
    assert region_address(1024) == 1
    assert region_address(10 * 1024 + 5) == 10


def test_region_base_is_region_aligned():
    assert region_base(1023) == 0
    assert region_base(1024) == 1024
    assert region_base(2049) == 2048


def test_block_index_in_region_covers_sixteen_slots():
    base = 7 * REGION_SIZE
    indices = [block_index_in_region(base + i * BLOCK_SIZE) for i in range(16)]
    assert indices == list(range(16))


def test_block_index_wraps_at_region_boundary():
    assert block_index_in_region(REGION_SIZE) == 0
    assert block_index_in_region(REGION_SIZE + BLOCK_SIZE) == 1


def test_region_offset_bits_default_is_four():
    assert region_offset_bits() == 4
    assert region_offset_bits(512, 64) == 3
    assert region_offset_bits(2048, 64) == 5


def test_region_offset_bits_rejects_bad_geometry():
    with pytest.raises(ValueError):
        region_offset_bits(1000, 64)
    with pytest.raises(ValueError):
        region_offset_bits(192, 64)


def test_blocks_of_region_enumerates_all_blocks():
    blocks = blocks_of_region(3)
    assert len(blocks) == BLOCKS_PER_REGION
    assert blocks[0] == 3 * REGION_SIZE
    assert blocks[-1] == 3 * REGION_SIZE + REGION_SIZE - BLOCK_SIZE
    assert all(b % BLOCK_SIZE == 0 for b in blocks)
