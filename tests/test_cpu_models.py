"""Tests for the CPU microarchitecture models (MSHR, ROB, interval timing)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import CoreParams, SystemParams
from repro.cpu.interval import IntervalTimingModel
from repro.cpu.mshr import MSHRFile
from repro.cpu.rob import ROBModel
from repro.sim.config import base_open, bump_system
from repro.sim.runner import build_trace, run_trace
from repro.sim.timing import TimingModel


class TestMSHRFile:
    def test_primary_and_secondary_misses_are_distinguished(self):
        mshrs = MSHRFile(entries=4)
        first = mshrs.allocate(0x1000, issue_time=1.0, pc=0x40)
        second = mshrs.allocate(0x1000, issue_time=2.0, pc=0x44)
        assert first is second
        assert mshrs.primary_misses == 1
        assert mshrs.secondary_misses == 1
        assert second.merged == 1
        assert second.merged_pcs == [0x44]

    def test_full_file_rejects_new_primary_misses(self):
        mshrs = MSHRFile(entries=2)
        assert mshrs.allocate(0x1000) is not None
        assert mshrs.allocate(0x2000) is not None
        assert mshrs.full
        assert mshrs.allocate(0x3000) is None
        assert mshrs.rejected_misses == 1
        # Merging into an existing entry still works while full.
        assert mshrs.allocate(0x1000) is not None

    def test_complete_frees_the_entry(self):
        mshrs = MSHRFile(entries=1)
        mshrs.allocate(0x1000)
        assert mshrs.is_outstanding(0x1000)
        entry = mshrs.complete(0x1000)
        assert entry is not None and entry.block_address == 0x1000
        assert not mshrs.is_outstanding(0x1000)
        assert mshrs.occupancy == 0
        assert mshrs.complete(0x1000) is None

    def test_statistics(self):
        mshrs = MSHRFile(entries=4)
        mshrs.allocate(0x1000)
        mshrs.allocate(0x2000)
        mshrs.allocate(0x1000)
        assert mshrs.merge_ratio == pytest.approx(1 / 3)
        assert mshrs.average_occupancy > 0.0
        mshrs.reset_statistics()
        assert mshrs.primary_misses == 0
        assert mshrs.occupancy == 2  # in-flight entries survive a stats reset

    def test_validation(self):
        with pytest.raises(ValueError):
            MSHRFile(entries=0)


class TestROBModel:
    def test_dependent_misses_yield_mlp_of_one(self):
        rob = ROBModel(independence=0.0)
        assert rob.memory_level_parallelism(instructions_per_miss=10) == 1.0

    def test_mlp_grows_with_miss_density_and_independence(self):
        sparse = ROBModel(independence=0.5).memory_level_parallelism(48)
        dense = ROBModel(independence=0.5).memory_level_parallelism(6)
        assert dense > sparse >= 1.0
        more_independent = ROBModel(independence=0.9).memory_level_parallelism(6)
        assert more_independent > dense

    def test_mlp_is_capped_by_mshrs(self):
        rob = ROBModel(independence=1.0, mshr_entries=4)
        assert rob.memory_level_parallelism(instructions_per_miss=1) == 4.0

    def test_rob_fill_time_scales_with_rob_size(self):
        small = ROBModel(core=CoreParams(rob_entries=32))
        large = ROBModel(core=CoreParams(rob_entries=128))
        assert large.rob_fill_cycles(1.0) > small.rob_fill_cycles(1.0)

    def test_exposed_latency_never_negative_and_below_raw_latency(self):
        rob = ROBModel()
        exposed = rob.exposed_miss_latency(200.0, instructions_per_miss=12)
        assert 0.0 <= exposed <= 200.0
        assert rob.exposed_miss_latency(5.0, instructions_per_miss=12) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ROBModel(independence=1.5)
        with pytest.raises(ValueError):
            ROBModel(mshr_entries=0)
        with pytest.raises(ValueError):
            ROBModel().rob_fill_cycles(0.0)

    @settings(max_examples=50, deadline=None)
    @given(
        instructions_per_miss=st.floats(min_value=0.5, max_value=1000.0),
        latency=st.floats(min_value=0.0, max_value=2000.0),
        independence=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_property_mlp_and_exposure_bounds(self, instructions_per_miss,
                                              latency, independence):
        rob = ROBModel(independence=independence)
        mlp = rob.memory_level_parallelism(instructions_per_miss)
        assert 1.0 <= mlp <= rob.mshr_entries
        exposed = rob.exposed_miss_latency(latency, instructions_per_miss)
        assert 0.0 <= exposed <= latency + 1e-9


class TestIntervalTimingModel:
    def summarize(self, model, misses=2_000, covered=500):
        return model.summarize(
            instructions=1_000_000,
            load_demand_misses=misses,
            covered_loads=covered,
            llc_load_hits=10_000,
            average_dram_latency_bus_cycles=60.0,
            dram_elapsed_bus_cycles=50_000.0,
        )

    def test_interval_model_produces_sane_summary(self):
        summary = self.summarize(IntervalTimingModel())
        assert summary.cycles > 0
        assert summary.throughput_ipc > 0
        assert 0.0 <= summary.stall_fraction < 1.0

    def test_fewer_misses_means_higher_throughput(self):
        model = IntervalTimingModel()
        many = self.summarize(model, misses=20_000)
        few = self.summarize(model, misses=1_000)
        assert few.throughput_ipc > many.throughput_ipc

    def test_agreement_with_analytic_model_on_ordering(self):
        params = SystemParams()
        analytic = TimingModel(params)
        interval = IntervalTimingModel(params)
        for model in (analytic, interval):
            slow = self.summarize(model, misses=30_000, covered=0)
            fast = self.summarize(model, misses=3_000, covered=27_000)
            assert fast.throughput_ipc > slow.throughput_ipc

    def test_bandwidth_bound_still_applies(self):
        summary = IntervalTimingModel().summarize(
            instructions=1_000,
            load_demand_misses=0,
            covered_loads=0,
            llc_load_hits=0,
            average_dram_latency_bus_cycles=60.0,
            dram_elapsed_bus_cycles=10_000_000.0,
        )
        assert summary.cycles == pytest.approx(summary.dram_bound_cycles)


class TestIntervalTimingIntegration:
    def test_config_selects_interval_model(self):
        trace = build_trace("web_search", 6_000, seed=9)
        analytic = run_trace(trace, base_open(), warmup_fraction=0.25)
        interval = run_trace(trace, base_open().with_overrides(timing_model="interval"),
                             warmup_fraction=0.25)
        assert interval.throughput_ipc > 0
        # The two models disagree on absolute IPC but both are finite and positive.
        assert analytic.throughput_ipc > 0

    def test_unknown_timing_model_is_rejected(self):
        from repro.sim.system import ServerSystem

        with pytest.raises(ValueError):
            ServerSystem(base_open().with_overrides(timing_model="quantum"))

    def test_bump_still_beats_baseline_under_interval_timing(self):
        trace = build_trace("web_search", 20_000, seed=9)
        base = run_trace(trace, base_open().with_overrides(timing_model="interval"),
                         warmup_fraction=0.4)
        bump = run_trace(trace, bump_system().with_overrides(timing_model="interval"),
                         warmup_fraction=0.4)
        assert bump.throughput_ipc >= base.throughput_ipc * 0.95
