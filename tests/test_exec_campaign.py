"""Campaign orchestration: parallel parity, store resume, progress streaming.

These tests carry the subsystem's acceptance criteria: a grid of 12
(workload x config x seed) jobs run with four workers must produce results
bit-identical to the serial path, and a second invocation against the same
artifact store must complete without re-simulating anything.
"""

import pytest

from repro.common.params import CacheParams, SystemParams
from repro.exec.campaign import (
    Campaign,
    run_campaign,
    run_job,
    result_fingerprint,
    verify_parity,
)
from repro.exec.jobs import JobGrid, JobSpec
from repro.exec.progress import RecordingProgress
from repro.exec.store import ArtifactStore
from repro.sim.config import named_configs

#: Small LLC so the tiny test traces still produce DRAM traffic.
SMALL = SystemParams().scaled(
    llc=CacheParams(size_bytes=256 * 1024, associativity=16, hit_latency_cycles=8)
)


def small_configs(names):
    return [config.with_overrides(system=SMALL)
            for config in named_configs(names).values()]


def small_grid(num_accesses=1500, seeds=(1, 2)):
    """2 workloads x 3 systems x 2 seeds = 12 jobs."""
    return JobGrid(
        workloads=["web_search", "media_streaming"],
        configs=small_configs(["base_open", "bump", "vwq"]),
        seeds=seeds,
        num_accesses=num_accesses,
        num_cores=4,
        warmup_fraction=0.25,
    )


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


class TestSharding:
    def test_jobs_sharing_a_trace_form_one_shard(self):
        from repro.exec.pool import shard_jobs

        jobs = list(enumerate(small_grid().expand()))  # 4 traces x 3 configs
        shards = shard_jobs(jobs, workers=4)
        assert len(shards) == 4
        for shard in shards:
            fingerprints = {job.trace_fingerprint() for _, job in shard}
            assert len(fingerprints) == 1

    def test_single_trace_grids_still_use_every_worker(self):
        from repro.exec.pool import shard_jobs

        grid = JobGrid(workloads=["web_search"],
                       configs=small_configs(["base_open", "bump", "vwq"]),
                       seeds=(1,), num_accesses=1000, num_cores=4)
        shards = shard_jobs(list(enumerate(grid.expand())), workers=3)
        assert len(shards) == 3
        assert sorted(len(shard) for shard in shards) == [1, 1, 1]

    def test_splitting_stops_at_singleton_shards(self):
        from repro.exec.pool import shard_jobs

        grid = JobGrid(workloads=["web_search"], configs=small_configs(["bump"]),
                       seeds=(1,), num_accesses=1000, num_cores=4)
        shards = shard_jobs(list(enumerate(grid.expand())), workers=8)
        assert len(shards) == 1


class TestParallelParity:
    def test_twelve_job_grid_with_four_workers_matches_serial(self):
        jobs = small_grid().expand()
        assert len(jobs) == 12
        serial = Campaign(jobs, store=None, workers=1).run()
        parallel = Campaign(jobs, store=None, workers=4).run()
        assert len(parallel) == 12
        for left, right in zip(serial.outcomes, parallel.outcomes):
            assert left.job.label == right.job.label
            assert result_fingerprint(left.result) == result_fingerprint(right.result)
            assert left.result.summary() == right.result.summary()

    def test_verify_parity_passes_and_reports_digests(self):
        jobs = small_grid(seeds=(1,)).expand()[:2]
        digests = verify_parity(jobs, workers=2)
        assert set(digests) == {job.label for job in jobs}

    def test_store_round_trip_preserves_parity(self, store):
        job = small_grid(seeds=(1,)).expand()[0]
        fresh = run_job(job, store=None)
        run_job(job, store=store)          # simulates and persists
        restored = run_job(job, store=store)  # pure store hit
        assert result_fingerprint(restored) == result_fingerprint(fresh)


class TestResume:
    def test_second_invocation_completes_from_store(self, store):
        jobs = small_grid().expand()
        first = Campaign(jobs, store=store, workers=4).run()
        assert first.simulated_count == 12 and first.cached_count == 0

        progress = RecordingProgress()
        second = Campaign(jobs, store=store, workers=4,
                          progress=progress).run()
        assert second.simulated_count == 0
        assert second.cached_count == 12
        assert progress.started == (12, 12, 4)
        assert all(source == "store" for _, source in progress.events)
        # And the restored results are the ones the first run computed.
        first_digests = [result_fingerprint(o.result) for o in first.outcomes]
        second_digests = [result_fingerprint(o.result) for o in second.outcomes]
        assert first_digests == second_digests

    def test_partial_run_resumes_only_missing_jobs(self, store):
        jobs = small_grid().expand()
        # Simulate a crashed sweep: only the first 5 jobs completed.
        Campaign(jobs[:5], store=store, workers=1).run()
        resumed = Campaign(jobs, store=store, workers=2).run()
        assert resumed.cached_count == 5
        assert resumed.simulated_count == 7

    def test_serial_and_parallel_share_one_store(self, store):
        jobs = small_grid(seeds=(1,)).expand()
        Campaign(jobs, store=store, workers=2).run()
        serial = Campaign(jobs, store=store, workers=1).run()
        assert serial.simulated_count == 0


class TestCampaignResult:
    def test_results_indexed_by_workload_config_seed(self):
        jobs = small_grid(seeds=(1,)).expand()
        outcome = Campaign(jobs, workers=1).run()
        table = outcome.results()
        assert ("web_search", "bump", 1) in table
        assert outcome.get("web_search", "bump").config_name == "bump"
        assert outcome.get("media_streaming", "vwq", seed=1).workload == "media_streaming"

    def test_get_rejects_ambiguous_and_missing_lookups(self):
        jobs = small_grid(num_accesses=1200).expand()
        outcome = Campaign(jobs, workers=1).run()
        with pytest.raises(KeyError):
            outcome.get("web_search", "bump")  # two seeds -> ambiguous
        with pytest.raises(KeyError):
            outcome.get("web_search", "no_such_system", seed=1)

    def test_progress_stream_counts_every_job(self):
        jobs = small_grid(seeds=(1,)).expand()
        progress = RecordingProgress()
        outcome = run_campaign(jobs, workers=2, progress=progress)
        assert progress.started == (6, 0, 2)
        assert len(progress.events) == 6
        assert progress.finished == (6, 0)
        assert outcome.simulated_count == 6

    def test_rejects_invalid_worker_count(self):
        with pytest.raises(ValueError):
            Campaign([], workers=0)

    def test_run_experiment_campaign_seeds_the_figure_cache(self):
        from repro.analysis import experiments

        experiments.clear_result_cache()
        try:
            outcome = experiments.run_experiment_campaign(
                ["web_search"], systems=["base_open", "bump"],
                num_accesses=2000, workers=2)
            assert len(outcome) == 2
            assert experiments.cached_result(
                "web_search", "bump", 2000, experiments.DEFAULT_SEED) is not None
            # The figure function must now be a pure cache lookup.
            table = experiments.figure2_row_buffer_hit(["web_search"],
                                                       num_accesses=2000)
            assert table["web_search"]["base_open"] == pytest.approx(
                outcome.get("web_search", "base_open").row_buffer_hit_ratio)
        finally:
            experiments.clear_result_cache()

    def test_core_scaling_performance_runs_as_one_campaign(self):
        from repro.analysis.scalability import core_scaling_performance

        table = core_scaling_performance(core_counts=(2, 4),
                                         workload="web_search",
                                         num_accesses=1500, workers=2)
        assert set(table) == {2, 4}
        for row in table.values():
            assert {"base_row_buffer_hit_ratio", "bump_row_buffer_hit_ratio",
                    "bump_energy_improvement", "bump_speedup"} <= set(row)

    def test_identical_demand_work_across_shared_trace(self):
        # Jobs sharing a trace fingerprint must observe the identical stream:
        # the processor-side access count matches across configurations.
        jobs = small_grid(seeds=(1,)).expand()
        outcome = Campaign(jobs, workers=4).run()
        base = outcome.get("web_search", "base_open", seed=1)
        bump = outcome.get("web_search", "bump", seed=1)
        assert base.counters["accesses"] == bump.counters["accesses"]


class TestCampaignMetrics:
    def test_serial_campaign_records_per_job_cost(self, store):
        jobs = small_grid(seeds=(1,)).expand()  # 6 jobs
        result = Campaign(jobs, store=store, workers=1).run()
        assert len(result.job_metrics) == len(jobs)
        assert all(m.source == "simulated" for m in result.job_metrics)
        assert all(m.wall_seconds > 0 for m in result.job_metrics)
        assert all(m.peak_rss_bytes > 0 for m in result.job_metrics)
        document = result.metrics
        assert document["jobs_simulated"] == len(jobs)
        assert document["workers"] == 1
        assert 0.0 < document["worker_utilization"] <= 1.0
        assert document["store"]["puts"] > 0

    def test_metrics_document_is_persisted_next_to_the_store(self, store):
        jobs = small_grid(seeds=(1,)).expand()
        result = Campaign(jobs, store=store, workers=1).run()
        from repro.telemetry import read_campaign_metrics

        assert result.metrics_path is not None
        assert result.metrics_path.parent == store.root / "metrics"
        loaded = read_campaign_metrics(result.metrics_path)
        assert loaded["jobs_total"] == len(jobs)
        # Re-running the identical sweep overwrites its own document.
        again = Campaign(jobs, store=store, workers=1).run()
        assert again.metrics_path == result.metrics_path

    def test_all_cached_rerun_reports_zero_utilization(self, store):
        jobs = small_grid(seeds=(1,)).expand()
        Campaign(jobs, store=store, workers=1).run()
        rerun = Campaign(jobs, store=store, workers=1).run()
        assert rerun.metrics["jobs_from_store"] == len(jobs)
        assert rerun.metrics["worker_utilization"] == 0.0
        assert all(m.wall_seconds == 0.0 for m in rerun.job_metrics)

    def test_storeless_campaign_builds_but_does_not_persist_metrics(self):
        jobs = small_grid(seeds=(1,)).expand()[:2]
        result = Campaign(jobs, store=None, workers=1).run()
        assert result.metrics_path is None
        assert result.metrics["jobs_total"] == 2
        assert "store" not in result.metrics

    def test_parallel_campaign_attributes_work_to_worker_pids(self, store):
        jobs = small_grid(seeds=(1,)).expand()
        result = Campaign(jobs, store=store, workers=2).run()
        assert len(result.job_metrics) == len(jobs)
        by_pid = result.metrics["wall_seconds_by_pid"]
        assert len(by_pid) >= 1
        assert all(seconds > 0 for seconds in by_pid.values())


class TestConsoleProgressEta:
    def _progress(self):
        import io

        from repro.exec.progress import ConsoleProgress

        stream = io.StringIO()
        return ConsoleProgress(stream=stream), stream

    def _job(self):
        return small_grid(seeds=(1,)).expand()[0]

    def test_rate_and_eta_appear_mid_campaign(self):
        progress, stream = self._progress()
        progress.on_start(total_jobs=4, cached_jobs=0, workers=1)
        progress._start -= 2.0  # pretend two seconds elapsed
        progress.on_job_done(self._job(), "simulated", completed=1, total=4)
        line = stream.getvalue().splitlines()[-1]
        assert "job/s" in line
        assert "eta" in line

    def test_last_job_drops_the_eta_but_keeps_the_rate(self):
        progress, stream = self._progress()
        progress.on_start(total_jobs=2, cached_jobs=0, workers=1)
        progress._start -= 1.0
        progress.on_job_done(self._job(), "simulated", completed=2, total=2)
        line = stream.getvalue().splitlines()[-1]
        assert "job/s" in line
        assert "eta" not in line

    def test_instantaneous_all_cached_campaign_divides_by_nothing(self, monkeypatch):
        import repro.exec.progress as progress_module

        monkeypatch.setattr(progress_module.time, "perf_counter", lambda: 123.0)
        progress, stream = self._progress()
        progress.on_start(total_jobs=3, cached_jobs=3, workers=1)
        progress.on_job_done(self._job(), "store", completed=1, total=3)
        line = stream.getvalue().splitlines()[-1]
        assert "job/s" not in line and "eta" not in line
