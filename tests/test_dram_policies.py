"""Tests for the alternative memory-controller scheduling policies."""

import pytest

from repro.common.params import DDR3Timing, DRAMOrganization
from repro.common.request import DRAMRequest, DRAMRequestKind
from repro.dram.address_mapping import DRAMCoordinates, make_region_interleaving
from repro.dram.controller import MemoryController, PagePolicy
from repro.dram.policies import (
    BankRoundRobinQueue,
    DrainWhenFullWriteQueue,
    FCFSQueue,
    make_scheduler,
    scheduler_names,
)
from repro.dram.scheduler import FRFCFSQueue


def read_request(block, core=0, cycle=0.0):
    return DRAMRequest(block_address=block, kind=DRAMRequestKind.DEMAND_READ,
                       core=core, arrival_cycle=cycle)


def write_request(block, core=0, cycle=0.0):
    return DRAMRequest(block_address=block, kind=DRAMRequestKind.DEMAND_WRITEBACK,
                       core=core, arrival_cycle=cycle)


def coords(row, bank=0, rank=0, channel=0, column=0):
    return DRAMCoordinates(channel=channel, rank=rank, bank=bank, row=row, column=column)


class TestFCFSQueue:
    def test_serves_in_strict_arrival_order(self):
        queue = FCFSQueue()
        queue.push(read_request(0), coords(row=1))
        queue.push(read_request(64), coords(row=2))
        queue.push(read_request(128), coords(row=1))
        open_rows = {(0, 0): 1}
        order = [queue.pop_next(open_rows)[1].row for _ in range(3)]
        assert order == [1, 2, 1]

    def test_empty_queue_returns_none(self):
        assert FCFSQueue().pop_next({}) is None

    def test_rejects_degenerate_window(self):
        with pytest.raises(ValueError):
            FCFSQueue(window=0)

    def test_any_pending_for_row_respects_window(self):
        queue = FCFSQueue(window=1)
        queue.push(read_request(0), coords(row=1))
        queue.push(read_request(64), coords(row=9))
        assert queue.any_pending_for_row(coords(row=1))
        assert not queue.any_pending_for_row(coords(row=9))


class TestBankRoundRobinQueue:
    def test_rotates_service_across_cores(self):
        queue = BankRoundRobinQueue()
        for index in range(3):
            queue.push(read_request(index * 64, core=0), coords(row=10 + index))
        queue.push(read_request(1024, core=1), coords(row=50))
        served_cores = [queue.pop_next({})[0].core for _ in range(4)]
        # Core 1 must be served before core 0's backlog is exhausted.
        assert served_cores.index(1) < 3

    def test_prefers_row_hits_within_the_chosen_core(self):
        queue = BankRoundRobinQueue()
        queue.push(read_request(0, core=0), coords(row=1))
        queue.push(read_request(64, core=0), coords(row=7))
        request, picked = queue.pop_next({(0, 0): 7})
        assert picked.row == 7
        assert request.core == 0

    def test_length_tracks_pushes_and_pops(self):
        queue = BankRoundRobinQueue()
        queue.push(read_request(0, core=0), coords(row=1))
        queue.push(read_request(64, core=1), coords(row=2))
        assert len(queue) == 2
        queue.pop_next({})
        assert len(queue) == 1
        queue.pop_next({})
        assert len(queue) == 0
        assert queue.pop_next({}) is None

    def test_any_pending_for_row_scans_all_cores(self):
        queue = BankRoundRobinQueue()
        queue.push(read_request(0, core=0), coords(row=1))
        queue.push(read_request(64, core=5), coords(row=9))
        assert queue.any_pending_for_row(coords(row=9))
        assert not queue.any_pending_for_row(coords(row=3))

    def test_no_core_starves(self):
        queue = BankRoundRobinQueue()
        for index in range(50):
            queue.push(read_request(index * 64, core=0), coords(row=index))
        queue.push(read_request(10_000, core=1), coords(row=999))
        positions = []
        for position in range(51):
            request, _ = queue.pop_next({})
            if request.core == 1:
                positions.append(position)
        # With only two cores the single core-1 request is served within the
        # first couple of pops.
        assert positions and positions[0] <= 2


class TestDrainWhenFullWriteQueue:
    def test_reads_bypass_buffered_writes(self):
        queue = DrainWhenFullWriteQueue(high_watermark=4, low_watermark=1)
        queue.push(write_request(0), coords(row=1))
        queue.push(read_request(64), coords(row=2))
        request, _ = queue.pop_next({})
        assert request.is_read
        assert queue.buffered_writes == 1

    def test_drains_writes_past_high_watermark(self):
        queue = DrainWhenFullWriteQueue(high_watermark=3, low_watermark=1)
        for index in range(3):
            queue.push(write_request(index * 64), coords(row=index))
        queue.push(read_request(4096), coords(row=50))
        request, _ = queue.pop_next({})
        assert request.is_write
        assert queue.draining

    def test_drain_stops_at_low_watermark(self):
        queue = DrainWhenFullWriteQueue(high_watermark=3, low_watermark=1)
        for index in range(3):
            queue.push(write_request(index * 64), coords(row=index))
        queue.push(read_request(4096), coords(row=50))
        kinds = []
        for _ in range(4):
            request, _ = queue.pop_next({})
            kinds.append("W" if request.is_write else "R")
        # Two writes drain (3 -> 1 buffered), then the read goes out, then the
        # final write.
        assert kinds == ["W", "W", "R", "W"]

    def test_drain_prefers_open_row_writes(self):
        queue = DrainWhenFullWriteQueue(high_watermark=2, low_watermark=0)
        queue.push(write_request(0), coords(row=5))
        queue.push(write_request(64), coords(row=9))
        request, picked = queue.pop_next({(0, 0): 9})
        assert picked.row == 9

    def test_writes_served_when_no_reads_remain(self):
        queue = DrainWhenFullWriteQueue(high_watermark=10, low_watermark=1)
        queue.push(write_request(0), coords(row=3))
        request, _ = queue.pop_next({})
        assert request.is_write
        assert queue.pop_next({}) is None

    def test_sorted_drain_groups_same_row_writes(self):
        queue = DrainWhenFullWriteQueue(high_watermark=4, low_watermark=0)
        queue.push(write_request(0), coords(row=9, bank=1))
        queue.push(write_request(64), coords(row=2, bank=0))
        queue.push(write_request(128), coords(row=2, bank=0))
        queue.push(write_request(192), coords(row=9, bank=1))
        rows = [queue.pop_next({})[1].row for _ in range(4)]
        assert rows == sorted(rows) or rows.count(rows[0]) == 2

    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            DrainWhenFullWriteQueue(high_watermark=2, low_watermark=2)

    def test_any_pending_covers_reads_and_writes(self):
        queue = DrainWhenFullWriteQueue()
        queue.push(read_request(0), coords(row=1))
        queue.push(write_request(64), coords(row=7))
        assert queue.any_pending_for_row(coords(row=1))
        assert queue.any_pending_for_row(coords(row=7))
        assert not queue.any_pending_for_row(coords(row=3))


class TestSchedulerRegistry:
    def test_all_registered_names_instantiate(self):
        for name in scheduler_names():
            queue = make_scheduler(name, window=16)
            assert len(queue) == 0
            assert queue.window == 16 or hasattr(queue, "read_queue")

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError) as err:
            make_scheduler("fr_fcfs")
        assert "frfcfs" in str(err.value)

    def test_frfcfs_factory_matches_paper_scheduler(self):
        assert isinstance(make_scheduler("frfcfs"), FRFCFSQueue)


class TestControllerWithAlternativeSchedulers:
    def make_controller(self, scheduler):
        org = DRAMOrganization()
        mapping = make_region_interleaving(org)
        return MemoryController(0, DDR3Timing(), org, mapping,
                                PagePolicy.OPEN, window=16, scheduler=scheduler)

    def run_stream(self, controller, blocks):
        for index, block in enumerate(blocks):
            controller.enqueue(DRAMRequest(block_address=block,
                                           kind=DRAMRequestKind.DEMAND_READ,
                                           core=index % 4,
                                           arrival_cycle=float(index)))
        controller.drain()
        return controller

    def test_every_scheduler_serves_all_requests(self):
        blocks = [i * 64 for i in range(64)]
        for name in scheduler_names():
            controller = self.run_stream(self.make_controller(name), blocks)
            assert controller.stats["accesses"] == len(blocks), name

    def test_frfcfs_beats_fcfs_on_interleaved_regions(self):
        """Round-robin interleaving of two regions defeats FCFS but FR-FCFS
        reorders within its window and recovers row hits."""
        region_a = [i * 64 for i in range(16)]
        region_b = [1024 * 1024 + i * 64 for i in range(16)]
        blocks = [block for pair in zip(region_a, region_b) for block in pair]

        fcfs = self.run_stream(self.make_controller("fcfs"), blocks)
        frfcfs = self.run_stream(self.make_controller("frfcfs"), blocks)
        assert frfcfs.row_hit_ratio >= fcfs.row_hit_ratio
