"""Unit tests for the set-associative predictor table."""

import pytest

from repro.common.assoc_table import AssociativeTable


def test_geometry_validation():
    with pytest.raises(ValueError):
        AssociativeTable(0, 4)
    with pytest.raises(ValueError):
        AssociativeTable(10, 4)
    table = AssociativeTable(16, 4)
    assert table.num_sets == 4


def test_lookup_miss_returns_none():
    table = AssociativeTable(16, 4)
    assert table.lookup("missing") is None
    assert table.hit_ratio == 0.0


def test_insert_then_lookup():
    table = AssociativeTable(16, 4)
    table.lookup("a")  # miss
    assert table.insert("a", 1) is None
    assert table.lookup("a") == 1
    assert table.hit_ratio == 0.5  # one miss, then one hit


def test_insert_existing_key_updates_without_eviction():
    table = AssociativeTable(4, 4)
    table.insert("a", 1)
    victim = table.insert("a", 2)
    assert victim is None
    assert table.lookup("a") == 2
    assert len(table) == 1


def test_conflict_eviction_reports_lru_victim():
    # Fully-associative with 2 entries: the least recently used key leaves.
    table = AssociativeTable(2, 2)
    table.insert("a", 1)
    table.insert("b", 2)
    table.lookup("a")  # promote "a" to MRU
    victim = table.insert("c", 3)
    assert victim == ("b", 2)
    assert table.contains("a")
    assert table.contains("c")
    assert not table.contains("b")
    assert table.conflict_evictions == 1


def test_remove_returns_value_or_none():
    table = AssociativeTable(8, 2)
    table.insert("a", 10)
    assert table.remove("a") == 10
    assert table.remove("a") is None


def test_contains_does_not_touch_statistics():
    table = AssociativeTable(8, 2)
    table.insert("a", 1)
    lookups_before = table.lookups
    assert table.contains("a")
    assert not table.contains("b")
    assert table.lookups == lookups_before


def test_capacity_is_bounded_by_entries():
    table = AssociativeTable(8, 2)
    for i in range(100):
        table.insert(i, i)
    assert len(table) <= 8


def test_iteration_yields_resident_pairs():
    table = AssociativeTable(8, 2)
    table.insert("x", 1)
    table.insert("y", 2)
    items = dict(iter(table))
    assert items == {"x": 1, "y": 2}


def test_lookup_without_touch_preserves_lru_order():
    table = AssociativeTable(2, 2)
    table.insert("a", 1)
    table.insert("b", 2)
    table.lookup("a", touch=False)
    victim = table.insert("c", 3)
    # "a" was not promoted, so it is still the LRU victim.
    assert victim == ("a", 1)
