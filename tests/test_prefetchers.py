"""Unit tests for the stride and SMS prefetcher baselines."""

from repro.common.addressing import BLOCK_SIZE, REGION_SIZE
from repro.common.request import LLCRequest, LLCRequestKind
from repro.cache.set_assoc import EvictedLine
from repro.prefetch.sms import SpatialMemoryStreaming, footprint_to_blocks, pattern_from_offsets
from repro.prefetch.stride import StridePrefetcher


def demand(pc, block, core=0, store=False):
    kind = LLCRequestKind.DEMAND_WRITE if store else LLCRequestKind.DEMAND_READ
    return LLCRequest(core=core, pc=pc, block_address=block, kind=kind, is_store=store)


# --------------------------------------------------------------------- #
# Stride prefetcher
# --------------------------------------------------------------------- #
def test_stride_needs_two_confirmations_before_prefetching():
    pf = StridePrefetcher(degree=4)
    assert pf.on_access(demand(0x400, 0), hit=False).fetch_blocks == []
    assert pf.on_access(demand(0x400, 64), hit=False).fetch_blocks == []
    assert pf.on_access(demand(0x400, 128), hit=False).fetch_blocks == []
    actions = pf.on_access(demand(0x400, 192), hit=False)
    assert actions.fetch_blocks == [256, 320, 384, 448]
    assert pf.issued == 4


def test_stride_detects_negative_and_multi_block_strides():
    pf = StridePrefetcher(degree=2)
    for block in (1024, 896, 768, 640):
        actions = pf.on_access(demand(0x10, block), hit=False)
    assert actions.fetch_blocks == [640 - 128, 640 - 256]


def test_stride_broken_by_irregular_pattern():
    pf = StridePrefetcher(degree=4)
    for block in (0, 64, 128, 8192, 64 * 100, 64 * 7):
        actions = pf.on_access(demand(0x20, block), hit=False)
    assert actions.fetch_blocks == []


def test_stride_ignores_same_block_repeats():
    pf = StridePrefetcher(degree=2)
    blocks = (0, 64, 64, 128, 192)
    last_actions = None
    for block in blocks:
        last_actions = pf.on_access(demand(0x30, block), hit=False)
    # The duplicate access must not reset stride confidence.
    assert last_actions.fetch_blocks == [256, 320]


def test_stride_streams_are_per_core():
    pf = StridePrefetcher(degree=2)
    # Two cores interleave the same PC with different address streams; each
    # core's stride is still detected independently.
    for i in range(4):
        a0 = pf.on_access(demand(0x40, i * 64, core=0), hit=False)
        a1 = pf.on_access(demand(0x40, 10_000_000 + i * 128, core=1), hit=False)
    assert a0.fetch_blocks == [256, 320]
    assert a1.fetch_blocks == [10_000_000 + 4 * 128, 10_000_000 + 5 * 128]


def test_stride_storage_reported():
    assert StridePrefetcher().storage_bits() > 0


# --------------------------------------------------------------------- #
# SMS
# --------------------------------------------------------------------- #
def test_sms_learns_and_replays_footprint():
    sms = SpatialMemoryStreaming()
    region_a = 100 * REGION_SIZE
    trigger_pc = 0x900
    offsets = [2, 3, 5, 7]
    # Training generation on region A.
    for offset in offsets:
        sms.on_access(demand(trigger_pc, region_a + offset * BLOCK_SIZE), hit=False)
    # Generation ends when one of its blocks is evicted.
    sms.on_eviction(EvictedLine(block_address=region_a + 2 * BLOCK_SIZE, dirty=False,
                                prefetched=False, used=True))
    # A new region triggered by the same PC at the same offset replays the footprint.
    region_b = 555 * REGION_SIZE
    actions = sms.on_access(demand(trigger_pc, region_b + 2 * BLOCK_SIZE), hit=False)
    expected = {region_b + offset * BLOCK_SIZE for offset in offsets if offset != 2}
    assert set(actions.fetch_blocks) == expected


def test_sms_ignores_store_traffic():
    sms = SpatialMemoryStreaming()
    region = 42 * REGION_SIZE
    for offset in range(8):
        actions = sms.on_access(demand(0x11, region + offset * BLOCK_SIZE, store=True),
                                hit=False)
        assert actions.fetch_blocks == []
    sms.on_eviction(EvictedLine(region, dirty=True, prefetched=False, used=True))
    actions = sms.on_access(demand(0x11, 77 * REGION_SIZE, store=True), hit=False)
    assert actions.fetch_blocks == []


def test_sms_does_not_predict_single_block_generations():
    sms = SpatialMemoryStreaming()
    region = 9 * REGION_SIZE
    sms.on_access(demand(0x77, region), hit=False)
    sms.on_eviction(EvictedLine(region, dirty=False, prefetched=False, used=True))
    actions = sms.on_access(demand(0x77, 11 * REGION_SIZE), hit=False)
    assert actions.fetch_blocks == []


def test_sms_agt_conflict_trains_pht():
    sms = SpatialMemoryStreaming(agt_entries=2, pht_entries=64, associativity=2)
    pc = 0x123
    # Fill the tiny AGT with two multi-block generations, then add a third
    # region to force a conflict eviction which must train the PHT.
    for region_index in range(3):
        base = (1000 + region_index * 7) * REGION_SIZE
        sms.on_access(demand(pc, base), hit=False)
        sms.on_access(demand(pc, base + BLOCK_SIZE), hit=False)
    assert sms.stats["generations_trained"] >= 1


def test_footprint_helpers_round_trip():
    pattern = pattern_from_offsets([0, 4, 15])
    blocks = footprint_to_blocks(3, pattern)
    assert blocks == [3 * REGION_SIZE, 3 * REGION_SIZE + 4 * BLOCK_SIZE,
                      3 * REGION_SIZE + 15 * BLOCK_SIZE]


def test_sms_storage_accounted():
    assert SpatialMemoryStreaming().storage_bits() > 0
