"""Unit tests for the DRAM, chip and server energy models (Table III)."""

import pytest

from repro.common.params import DRAMOrganization, SystemParams
from repro.energy.accounting import ServerEnergyModel
from repro.energy.chip_energy import ChipEnergyModel
from repro.energy.dram_energy import DRAMEnergyModel
from repro.energy.params import ChipEnergyParams, DRAMEnergyParams
from repro.energy.structures import BuMPStructureEnergy, SRAMStructureModel


# --------------------------------------------------------------------- #
# DRAM energy
# --------------------------------------------------------------------- #
def test_activation_energy_dominates_transfer_energy():
    params = DRAMEnergyParams()
    # Table III / Section II.B: a page activation costs roughly 3x a transfer.
    assert params.activation_energy_nj > 2.0 * params.read_energy_nj


def test_dram_energy_scales_linearly_with_commands():
    model = DRAMEnergyModel()
    single = model.compute(activations=1, reads=1, writes=1, elapsed_seconds=0.0)
    double = model.compute(activations=2, reads=2, writes=2, elapsed_seconds=0.0)
    assert double.activation_nj == pytest.approx(2 * single.activation_nj)
    assert double.burst_io_nj == pytest.approx(2 * single.burst_io_nj)


def test_background_energy_scales_with_time_and_utilisation():
    model = DRAMEnergyModel()
    idle = model.compute(0, 0, 0, elapsed_seconds=1.0, utilization=0.0)
    busy = model.compute(0, 0, 0, elapsed_seconds=1.0, utilization=1.0)
    assert busy.background_nj > idle.background_nj
    # 8 ranks at 540 mW for one second = 4.32 J.
    assert idle.background_nj == pytest.approx(8 * 0.540 * 1e9, rel=1e-6)


def test_energy_per_access_amortisation():
    """Serving 16 blocks from one activation must beat 16 activations."""
    model = DRAMEnergyModel()
    bulk = model.energy_per_access_nj(activations=1, reads=16, writes=0,
                                      useful_accesses=16)
    scattered = model.energy_per_access_nj(activations=16, reads=16, writes=0,
                                           useful_accesses=16)
    assert bulk.total_nj < scattered.total_nj
    saving = 1 - bulk.total_nj / scattered.total_nj
    # Section II.B: fetching 16 blocks with a single activation saves up to
    # ~65% of dynamic memory energy.
    assert 0.5 < saving < 0.75


def test_energy_per_access_counts_overfetch_in_numerator_only():
    model = DRAMEnergyModel()
    clean = model.energy_per_access_nj(activations=4, reads=16, writes=0,
                                       useful_accesses=16)
    overfetch = model.energy_per_access_nj(activations=4, reads=32, writes=0,
                                           useful_accesses=16)
    assert overfetch.total_nj > clean.total_nj


def test_energy_per_access_zero_denominator():
    model = DRAMEnergyModel()
    parts = model.energy_per_access_nj(10, 10, 10, useful_accesses=0)
    assert parts.total_nj == 0.0


def test_total_ranks_follows_organisation():
    model = DRAMEnergyModel(org=DRAMOrganization(channels=2, ranks_per_channel=4))
    assert model.total_ranks == 8


# --------------------------------------------------------------------- #
# Chip energy
# --------------------------------------------------------------------- #
def test_core_energy_scales_with_ipc():
    model = ChipEnergyModel(num_cores=16)
    slow = model.core_energy_nj(aggregate_ipc=4.0, elapsed_seconds=1e-3)
    fast = model.core_energy_nj(aggregate_ipc=16.0, elapsed_seconds=1e-3)
    assert fast > slow


def test_llc_energy_has_leakage_floor():
    model = ChipEnergyModel()
    idle = model.llc_energy_nj(reads=0, writes=0, elapsed_seconds=1e-3)
    assert idle == pytest.approx(0.750 * 1e-3 * 1e9)


def test_noc_energy_bounded_by_peak():
    model = ChipEnergyModel()
    over = model.noc_energy_nj(utilization=5.0, elapsed_seconds=1.0)
    peak = model.noc_energy_nj(utilization=1.0, elapsed_seconds=1.0)
    assert over == pytest.approx(peak)


def test_memory_controller_energy_scales_with_bandwidth():
    model = ChipEnergyModel()
    half = model.memory_controller_energy_nj(6.4, elapsed_seconds=1.0)
    full = model.memory_controller_energy_nj(12.8, elapsed_seconds=1.0)
    assert full == pytest.approx(2 * half)


# --------------------------------------------------------------------- #
# Server-level accounting
# --------------------------------------------------------------------- #
def make_breakdown(activations=1000, reads=2000, writes=500):
    model = ServerEnergyModel(SystemParams())
    return model.breakdown(
        instructions=1_000_000,
        elapsed_seconds=1e-3,
        aggregate_ipc=8.0,
        activations=activations,
        dram_reads=reads,
        dram_writes=writes,
        llc_reads=5000,
        llc_writes=2500,
        noc_utilization=0.05,
        channel_utilization=0.3,
        useful_accesses=reads + writes,
    )


def test_breakdown_totals_are_consistent():
    breakdown = make_breakdown()
    shares = breakdown.component_shares()
    assert sum(shares.values()) == pytest.approx(1.0)
    assert breakdown.total_nj == pytest.approx(
        breakdown.chip.total_nj + breakdown.dram.total_nj
    )
    assert breakdown.energy_per_instruction_nj > 0


def test_memory_share_is_significant_for_memory_heavy_runs():
    """Figure 1: memory should be a first-order energy consumer."""
    breakdown = make_breakdown(activations=50_000, reads=80_000, writes=30_000)
    assert breakdown.memory_share > 0.3


def test_memory_energy_per_access_matches_dram_model():
    model = ServerEnergyModel(SystemParams())
    per_access = model.memory_energy_per_access(activations=10, dram_reads=20,
                                                dram_writes=5, useful_accesses=25)
    assert per_access.total_nj > 0
    assert per_access.activation_nj == pytest.approx(10 * 29.7 / 25)


# --------------------------------------------------------------------- #
# BuMP structure storage / energy
# --------------------------------------------------------------------- #
def test_sram_structure_storage_arithmetic():
    table = SRAMStructureModel(name="bht", entries=1024, tag_bits=32, payload_bits=4)
    assert table.bits_per_entry == 37
    assert table.total_bits == 1024 * 37
    assert table.total_kib == pytest.approx(1024 * 37 / 8 / 1024)


def test_bump_structure_power_is_below_50mw():
    """Section V.F: BuMP's structures stay under ~50 mW of on-chip power."""
    energy = BuMPStructureEnergy(ChipEnergyParams())
    # One RDTT access and one BHT/DRT access per LLC access, 10M LLC accesses
    # over a 10 ms interval is far beyond the evaluated traffic.
    power = energy.average_power_w(rdtt_accesses=10_000_000,
                                   bht_drt_accesses=10_000_000,
                                   elapsed_seconds=10e-3)
    assert power < 0.05 * 200  # generous sanity bound
    realistic = energy.average_power_w(1_000_000, 1_000_000, 10e-3)
    assert realistic < 0.05
