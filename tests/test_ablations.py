"""Smoke/shape tests for the ablation experiments.

The ablation functions are exercised on one workload and short traces so the
whole module stays fast; the benchmark harness runs them at full length.
"""

import pytest

from repro.analysis import ablations
from repro.analysis.experiments import clear_result_cache

WORKLOADS = ["web_search"]
ACCESSES = 24_000


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    clear_result_cache()
    yield
    clear_result_cache()


def test_rdtt_sizing_coverage_grows_then_saturates():
    table = ablations.rdtt_sizing(entry_counts=(32, 1024), workloads=WORKLOADS,
                                  num_accesses=ACCESSES)
    assert set(table) == {32, 1024}
    small, large = table[32], table[1024]
    assert 0.0 <= small["read_coverage"] <= 1.0
    # A larger RDTT never hurts coverage on the same trace.
    assert large["read_coverage"] >= small["read_coverage"] - 0.02


def test_predictor_table_sizing_reports_expected_fields():
    table = ablations.predictor_table_sizing(entry_counts=(128, 1024),
                                             workloads=WORKLOADS, num_accesses=ACCESSES)
    for entry in table.values():
        assert 0.0 <= entry["write_coverage"] <= 1.0
        assert entry["extra_writebacks"] >= 0.0
    assert table[1024]["write_coverage"] >= table[128]["write_coverage"] - 0.02


def test_scheduler_policy_study_orders_policies_sensibly():
    table = ablations.scheduler_policy_study(policies=("fcfs", "frfcfs"),
                                             workloads=WORKLOADS, num_accesses=ACCESSES)
    assert set(table) == {"fcfs", "frfcfs"}
    # FR-FCFS exploits at least as much row locality as strict FCFS.
    assert (table["frfcfs"]["row_buffer_hit_ratio"]
            >= table["fcfs"]["row_buffer_hit_ratio"] - 0.02)


def test_interleaving_sensitivity_favours_region_mapping():
    table = ablations.interleaving_sensitivity(workloads=WORKLOADS, num_accesses=ACCESSES)
    assert (table["region"]["row_buffer_hit_ratio"]
            > table["block"]["row_buffer_hit_ratio"])
    assert (table["region"]["energy_per_access_nj"]
            < table["block"]["energy_per_access_nj"])


def test_writeback_mechanism_study_reports_all_mechanisms():
    # Short traces do not fill the 4MB LLC, so dirty evictions (and therefore
    # write coverage) stay at zero here; the ordering claims are asserted by
    # the full-length benchmark (bench_ablation_writeback.py).  This test
    # checks the structure and the invariants that hold at any trace length.
    table = ablations.writeback_mechanism_study(workloads=WORKLOADS, num_accesses=ACCESSES)
    assert set(table) == {"base_open", "eager_writeback", "vwq", "bump", "bump_vwq"}
    for entry in table.values():
        assert 0.0 <= entry["write_coverage"] <= 1.0
        assert entry["dram_writes"] >= 0.0
    assert table["base_open"]["write_coverage"] == 0.0


def test_prefetcher_comparison_shapes():
    table = ablations.prefetcher_comparison(workloads=WORKLOADS, num_accesses=ACCESSES)
    assert set(table) == {"nextline", "stride", "stealth", "sms", "bump"}
    for entry in table.values():
        assert 0.0 <= entry["read_coverage"] <= 1.0
        assert entry["read_overfetch"] >= 0.0
    # BuMP reaches at least the coverage of the stride baseline.
    assert table["bump"]["read_coverage"] >= table["stride"]["read_coverage"] - 0.02


def test_timing_model_sensitivity_keeps_bump_ahead():
    table = ablations.timing_model_sensitivity(workloads=WORKLOADS, num_accesses=ACCESSES)
    assert set(table) == {"analytic", "interval"}
    for entry in table.values():
        assert entry["bump_speedup_over_base_open"] > -0.05
