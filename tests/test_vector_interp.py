"""The vectorized batch interpreter: selection, primitives, bit-identity.

The vector interpreter (``REPRO_INTERP=vector``, the default on the flat
cache engine) classifies each chunk row as a pure L1 hit or an escape and
applies hit side effects in bulk; the scalar interpreter replays every row
through the fused loop.  Both must produce *identical* results -- the
property tests here drive the interpreter through its hard regimes
(store-heavy batches, eviction storms that invalidate classifications
mid-segment, agent-observable traffic) and assert full result fingerprints,
plus chunk/sub-batch boundary invariance.  The flat cache's batched
primitives are unit-tested against a scalar replay of the same rows.
"""

import numpy as np
import pytest

from repro.cache.flat import FLAG_DIRTY, FlatSetAssociativeCache
from repro.common.addressing import BLOCK_BITS
from repro.common.params import CacheParams, SystemParams
from repro.exec.campaign import result_fingerprint
from repro.sim.config import base_open, named_configs
from repro.sim.interp import (
    DEFAULT_INTERP,
    INTERP_ENV_VAR,
    INTERPS,
    interp_name,
    resolve_interp,
)
from repro.sim.runner import run_trace
from repro.sim.system import _CYCLE_CACHE_LIMIT, ServerSystem
from repro.trace.buffer import TraceBuffer

CORES = 8


def _random_trace(accesses: int, blocks_per_core: int,
                  store_fraction: float = 0.3, seed: int = 11,
                  cores: int = CORES) -> TraceBuffer:
    """Per-core-disjoint random trace with a controlled footprint."""
    rng = np.random.default_rng(seed)
    core = rng.integers(0, cores, accesses).astype(np.int32)
    offsets = rng.integers(0, blocks_per_core, accesses).astype(np.uint64)
    address = (core.astype(np.uint64) << np.uint64(32)) | \
        (offsets << np.uint64(BLOCK_BITS))
    pc = (rng.integers(0, 64, accesses).astype(np.uint64) << np.uint64(2)) \
        + np.uint64(0x400000)
    is_store = rng.random(accesses) < store_fraction
    instructions = rng.integers(1, 4, accesses).astype(np.int32)
    return TraceBuffer(core, pc, address, is_store, instructions)


def _fingerprints(trace, config, **kwargs):
    scalar = run_trace(trace, config, interp="scalar", **kwargs)
    vector = run_trace(trace, config, interp="vector", **kwargs)
    return result_fingerprint(scalar), result_fingerprint(vector)


# --------------------------------------------------------------------- #
# Interpreter selection
# --------------------------------------------------------------------- #
class TestInterpSelection:
    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv(INTERP_ENV_VAR, raising=False)
        assert DEFAULT_INTERP == "vector"
        assert interp_name() == "vector"

    def test_env_var_selects_the_interpreter(self, monkeypatch):
        monkeypatch.setenv(INTERP_ENV_VAR, "scalar")
        assert interp_name() == "scalar"

    def test_explicit_override_beats_the_environment(self, monkeypatch):
        monkeypatch.setenv(INTERP_ENV_VAR, "scalar")
        assert interp_name("vector") == "vector"

    def test_unknown_interpreter_is_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="interp"):
            interp_name("jit")
        monkeypatch.setenv(INTERP_ENV_VAR, "turbo")
        with pytest.raises(ValueError, match="turbo"):
            interp_name()

    def test_vector_requires_the_flat_cache_engine(self):
        assert resolve_interp("vector", "flat") == "vector"
        assert resolve_interp("vector", "dict") == "scalar"
        assert resolve_interp("scalar", "dict") == "scalar"
        system = ServerSystem(base_open(), cache_engine="dict",
                              interp="vector")
        assert system.interp == "scalar"
        assert ServerSystem(base_open(), interp="vector").interp == "vector"

    def test_interps_tuple_lists_both(self):
        assert set(INTERPS) == {"vector", "scalar"}


# --------------------------------------------------------------------- #
# Degenerate inputs and bounded memoization
# --------------------------------------------------------------------- #
class TestChunkEdgeCases:
    @pytest.mark.parametrize("interp", INTERPS)
    def test_zero_length_chunk_is_a_no_op(self, interp):
        system = ServerSystem(base_open(), interp=interp)
        before = result_fingerprint(system._collect_results())
        system._run_chunk(TraceBuffer.empty())
        assert result_fingerprint(system._collect_results()) == before

    @pytest.mark.parametrize("interp", INTERPS)
    def test_empty_chunks_in_a_stream_are_invisible(self, interp):
        trace = _random_trace(2_000, blocks_per_core=64)
        config = base_open()
        whole = run_trace(trace, config, interp=interp)
        chunks = []
        for chunk in trace.iter_chunks(500):
            chunks.extend([TraceBuffer.empty(), chunk, TraceBuffer.empty()])
        padded = run_trace(chunks, config, interp=interp)
        assert result_fingerprint(padded) == result_fingerprint(whole)

    def test_cycle_increment_cache_is_bounded(self):
        accesses = 3 * _CYCLE_CACHE_LIMIT
        rng = np.random.default_rng(5)
        core = np.zeros(accesses, dtype=np.int32)
        address = (rng.integers(0, 64, accesses).astype(np.uint64)
                   << np.uint64(BLOCK_BITS))
        pc = np.full(accesses, 0x400000, dtype=np.uint64)
        is_store = np.zeros(accesses, dtype=bool)
        # Every row carries a distinct instruction count, so an unbounded
        # memo would grow to ``accesses`` entries.
        instructions = np.arange(1, accesses + 1, dtype=np.int32)
        trace = TraceBuffer(core, pc, address, is_store, instructions)
        system = ServerSystem(base_open(), interp="scalar")
        system.run(trace)
        assert len(system._cycle_increment_cache) <= _CYCLE_CACHE_LIMIT


# --------------------------------------------------------------------- #
# Bit-identity property tests (vector == scalar)
# --------------------------------------------------------------------- #
@pytest.mark.slow
class TestVectorScalarBitIdentity:
    def test_store_heavy_trace(self):
        trace = _random_trace(6_000, blocks_per_core=48, store_fraction=0.9,
                              seed=23)
        scalar, vector = _fingerprints(trace, base_open())
        assert scalar == vector

    def test_eviction_heavy_trace(self):
        # A 1 KiB L1 (8 sets x 2 ways) under a 64-block/core footprint:
        # nearly every access escapes and most fills evict, exercising the
        # stale-classification re-verify/split path constantly.
        tiny_l1 = SystemParams().scaled(
            l1d=CacheParams(size_bytes=1024, associativity=2,
                            hit_latency_cycles=2))
        config = base_open().with_overrides(system=tiny_l1)
        trace = _random_trace(6_000, blocks_per_core=64, seed=31)
        scalar, vector = _fingerprints(trace, config)
        assert scalar == vector

    def test_agent_observable_traffic(self):
        # The bump config attaches LLC agents; escapes must replay through
        # the same hook sequence the scalar loop drives.
        config = named_configs(["bump"])["bump"]
        trace = _random_trace(6_000, blocks_per_core=512, seed=47)
        scalar, vector = _fingerprints(trace, config)
        assert scalar == vector

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_randomized_escape_placement(self, seed):
        # Mid-size footprint: sub-batches mix dense and sparse escape
        # patterns, randomizing where segments split.
        trace = _random_trace(5_000, blocks_per_core=200, seed=seed,
                              store_fraction=0.5)
        scalar, vector = _fingerprints(trace, base_open())
        assert scalar == vector

    def test_chunk_size_invariance(self):
        trace = _random_trace(4_000, blocks_per_core=96, seed=13)
        config = base_open()
        reference = result_fingerprint(
            run_trace(trace, config, interp="scalar"))
        for chunk_size in (64, 999, 2_048, 4_000):
            chunked = run_trace(trace.iter_chunks(chunk_size), config,
                                interp="vector", num_accesses=len(trace))
            assert result_fingerprint(chunked) == reference, (
                f"vector interpreter diverged at chunk_size={chunk_size}")


# --------------------------------------------------------------------- #
# Pooled storage adoption
# --------------------------------------------------------------------- #
class TestShareStorage:
    PARAMS = CacheParams(size_bytes=1024, associativity=2,
                         hit_latency_cycles=2)

    def _pool(self, cache):
        shape = (cache.num_sets, cache.ways)
        return (np.empty(shape, dtype=np.int64),
                np.empty(shape, dtype=np.uint8),
                np.empty(shape, dtype=np.int64),
                np.empty(shape, dtype=np.int32),
                np.empty(shape, dtype=np.int64),
                np.empty(shape[:1], dtype=np.int64))

    def test_adoption_preserves_state(self):
        cache = FlatSetAssociativeCache(self.PARAMS, name="l1")
        block = 7 << BLOCK_BITS
        cache.fill_l1(block, True, pc=0x400000, core=0)
        views = self._pool(cache)
        cache.share_storage(*views)
        assert cache.tags is views[0]
        assert cache.contains(block)
        line = cache.lookup(block)
        assert line is not None and line.dirty
        # Writes through the cache land in the adopted pool.
        other = 9 << BLOCK_BITS
        cache.fill_l1(other, False, pc=0x400004, core=0)
        assert other in views[0]

    def test_geometry_and_dtype_are_validated(self):
        cache = FlatSetAssociativeCache(self.PARAMS, name="l1")
        views = list(self._pool(cache))
        views[0] = np.empty((cache.num_sets, cache.ways + 1), dtype=np.int64)
        with pytest.raises(ValueError, match="mismatch"):
            cache.share_storage(*views)
        views = list(self._pool(cache))
        views[4] = np.empty((cache.num_sets, cache.ways), dtype=np.float64)
        with pytest.raises(ValueError, match="mismatch"):
            cache.share_storage(*views)
        views = list(self._pool(cache))
        views[0] = np.empty((cache.num_sets, cache.ways * 2),
                            dtype=np.int64)[:, ::2]
        with pytest.raises(ValueError, match="contiguous"):
            cache.share_storage(*views)


# --------------------------------------------------------------------- #
# Batched cache primitives vs scalar replay
# --------------------------------------------------------------------- #
class TestBatchedPrimitives:
    PARAMS = CacheParams(size_bytes=2048, associativity=2,
                         hit_latency_cycles=2)

    def _filled_cache(self, blocks):
        cache = FlatSetAssociativeCache(self.PARAMS, name="l1")
        for block in blocks:
            cache.fill_l1(int(block), False, pc=0x400000, core=0)
        return cache

    def _resident_blocks(self, count, seed=3):
        rng = np.random.default_rng(seed)
        return (rng.permutation(count).astype(np.int64) << BLOCK_BITS)

    def test_batch_probe_matches_scalar_lookup(self):
        resident = self._resident_blocks(16)
        cache = self._filled_cache(resident)
        probe = np.concatenate([resident, (np.arange(100, 108, dtype=np.int64)
                                           << BLOCK_BITS)])
        set_indices = (probe >> BLOCK_BITS) & (cache.num_sets - 1)
        hit_mask, slots = cache.batch_probe(probe, set_indices)
        for i, block in enumerate(probe.tolist()):
            expected = cache._slot_of.get(block)
            assert hit_mask[i] == (expected is not None)
            if expected is not None:
                assert slots[i] == expected

    def test_batch_verify_detects_evicted_lines(self):
        resident = self._resident_blocks(16)
        cache = self._filled_cache(resident)
        set_indices = (resident >> BLOCK_BITS) & (cache.num_sets - 1)
        hit_mask, slots = cache.batch_probe(resident, set_indices)
        assert hit_mask.all()
        assert cache.batch_verify(resident, slots).all()
        # Conflict-fill one set until its original lines are evicted.
        victim = int(resident[0])
        victim_set = (victim >> BLOCK_BITS) & (cache.num_sets - 1)
        for way in range(cache.ways):
            conflicting = ((cache.num_sets * (way + 5)) + victim_set) \
                << BLOCK_BITS
            cache.fill_l1(conflicting, False, pc=0x400000, core=0)
        verdict = cache.batch_verify(resident, slots)
        assert not verdict[0]
        assert verdict[(set_indices != victim_set)].all()

    def test_batch_apply_hits_matches_scalar_replay(self):
        resident = self._resident_blocks(16)
        bulk = self._filled_cache(resident)
        scalar = self._filled_cache(resident)
        rng = np.random.default_rng(9)
        rows = rng.integers(0, len(resident), 200)
        blocks = resident[rows]
        stores = rng.random(len(rows)) < 0.4
        set_indices = (blocks >> BLOCK_BITS) & (bulk.num_sets - 1)
        _, slots = bulk.batch_probe(blocks, set_indices)
        bulk.batch_apply_hits(set_indices, slots, stores)
        for block, store in zip(blocks.tolist(), stores.tolist()):
            scalar.demand_access(block, store)
        np.testing.assert_array_equal(bulk.stamps, scalar.stamps)
        np.testing.assert_array_equal(bulk.ticks, scalar.ticks)
        np.testing.assert_array_equal(bulk.flags & FLAG_DIRTY,
                                      scalar.flags & FLAG_DIRTY)

    def test_batch_apply_hits_empty_batch_is_a_no_op(self):
        resident = self._resident_blocks(8)
        cache = self._filled_cache(resident)
        ticks_before = cache.ticks.copy()
        empty = np.empty(0, dtype=np.int64)
        cache.batch_apply_hits(empty, empty, np.empty(0, dtype=bool))
        np.testing.assert_array_equal(cache.ticks, ticks_before)
