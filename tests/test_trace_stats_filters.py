"""Tests for trace characterisation, filtering and the LLC recorder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.addressing import BLOCK_SIZE, REGION_SIZE
from repro.common.request import Access, AccessType
from repro.sim.config import base_open
from repro.sim.runner import build_trace, run_trace
from repro.trace.capture import LLCTraceRecorder
from repro.trace.filters import (
    filter_by_address_range,
    filter_by_core,
    filter_by_type,
    interleave_round_robin,
    remap_cores,
    sample_systematic,
    split_by_core,
    truncate,
)
from repro.trace.stats import characterize_trace
from repro.workloads.catalog import get_workload
from repro.workloads.generator import generate_trace


def access(core=0, pc=0x400000, address=0, store=False, instructions=1):
    return Access(core=core, pc=pc, address=address,
                  type=AccessType.STORE if store else AccessType.LOAD,
                  instructions=instructions)


class TestCharacterize:
    def test_counts_and_footprint(self):
        trace = [
            access(core=0, address=0, instructions=2),
            access(core=1, address=BLOCK_SIZE, store=True, instructions=4),
            access(core=0, address=8, instructions=6),  # same block as the first
        ]
        stats = characterize_trace(trace)
        assert stats.accesses == 3
        assert stats.stores == 1
        assert stats.store_fraction == pytest.approx(1 / 3)
        assert stats.footprint_blocks == 2
        assert stats.footprint_regions == 1
        assert stats.active_cores == 2
        assert stats.mean_instructions_per_access == pytest.approx(4.0)

    def test_empty_trace_yields_zeroes(self):
        stats = characterize_trace([])
        assert stats.accesses == 0
        assert stats.store_fraction == 0.0
        assert stats.summary()["footprint_mib"] == 0.0
        assert stats.region_density_histogram() == {"low": 0.0, "medium": 0.0, "high": 0.0}

    def test_region_density_histogram_classifies_by_blocks_touched(self):
        dense = [access(address=i * BLOCK_SIZE) for i in range(16)]           # 100%
        medium = [access(address=REGION_SIZE * 4 + i * BLOCK_SIZE) for i in range(5)]
        sparse = [access(address=REGION_SIZE * 8)]
        histogram = characterize_trace(dense + medium + sparse).region_density_histogram()
        assert histogram["high"] == pytest.approx(1 / 3)
        assert histogram["medium"] == pytest.approx(1 / 3)
        assert histogram["low"] == pytest.approx(1 / 3)

    def test_pc_concentration_reflects_code_data_correlation(self):
        hot = [access(pc=0x400000, address=i * BLOCK_SIZE) for i in range(90)]
        cold = [access(pc=0x700000 + i * 16, address=10 * REGION_SIZE + i * BLOCK_SIZE)
                for i in range(10)]
        stats = characterize_trace(hot + cold)
        assert stats.pc_concentration(1) == pytest.approx(0.9)
        assert stats.hot_pcs(1) == [0x400000]

    def test_workload_trace_matches_spec_characteristics(self):
        spec = get_workload("media_streaming")
        trace = generate_trace(spec, 20_000, num_cores=8, seed=3)
        stats = characterize_trace(trace)
        assert stats.active_cores == 8
        # Stores exist but do not dominate.
        assert 0.02 < stats.store_fraction < 0.6
        # Code/data correlation: a small number of PCs issues most accesses.
        assert stats.pc_concentration(50) > 0.5


class TestFilters:
    def make_trace(self):
        return [access(core=i % 4, address=i * BLOCK_SIZE, store=(i % 5 == 0))
                for i in range(40)]

    def test_filter_by_core(self):
        trace = self.make_trace()
        only = filter_by_core(trace, cores=[2])
        assert only and all(a.core == 2 for a in only)

    def test_filter_by_type_partitions_trace(self):
        trace = self.make_trace()
        loads = filter_by_type(trace, loads=True, stores=False)
        stores = filter_by_type(trace, loads=False, stores=True)
        assert len(loads) + len(stores) == len(trace)
        assert all(not a.is_store for a in loads)
        assert all(a.is_store for a in stores)

    def test_filter_by_address_range(self):
        trace = self.make_trace()
        window = filter_by_address_range(trace, 5 * BLOCK_SIZE, 10 * BLOCK_SIZE)
        assert [a.address for a in window] == [i * BLOCK_SIZE for i in range(5, 10)]
        with pytest.raises(ValueError):
            filter_by_address_range(trace, 10, 10)

    def test_truncate(self):
        trace = self.make_trace()
        assert len(truncate(trace, 7)) == 7
        assert truncate(trace, 0) == []
        with pytest.raises(ValueError):
            truncate(trace, -1)

    def test_split_then_interleave_preserves_accesses(self):
        trace = self.make_trace()
        streams = split_by_core(trace)
        merged = interleave_round_robin(list(streams.values()))
        assert sorted(a.address for a in merged) == sorted(a.address for a in trace)

    def test_interleave_handles_uneven_streams(self):
        short = [access(core=0, address=0)]
        long = [access(core=1, address=(i + 1) * BLOCK_SIZE) for i in range(5)]
        merged = interleave_round_robin([short, long])
        assert len(merged) == 6

    def test_remap_cores_with_explicit_mapping(self):
        trace = self.make_trace()
        remapped = remap_cores(trace, mapping={0: 7})
        assert {a.core for a in remapped} == {7, 1, 2, 3}

    def test_remap_cores_by_folding(self):
        trace = self.make_trace()
        folded = remap_cores(trace, num_cores=2)
        assert {a.core for a in folded} == {0, 1}

    def test_remap_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            remap_cores([], mapping={0: 1}, num_cores=2)
        with pytest.raises(ValueError):
            remap_cores([])

    def test_systematic_sampling_keeps_one_unit_per_period(self):
        trace = [access(address=i * BLOCK_SIZE) for i in range(100)]
        sampled = sample_systematic(trace, period=5, unit_length=10)
        assert len(sampled) == 20
        assert sampled[0].address == 0
        assert sampled[10].address == 50 * BLOCK_SIZE
        with pytest.raises(ValueError):
            sample_systematic(trace, period=0, unit_length=10)


class TestLLCTraceRecorder:
    #: A scaled-down LLC so a few-thousand-access trace produces evictions.
    small_system = None

    @classmethod
    def small_config(cls):
        from repro.common.params import CacheParams, SystemParams

        if cls.small_system is None:
            cls.small_system = SystemParams().scaled(
                llc=CacheParams(size_bytes=256 * 1024, associativity=16,
                                hit_latency_cycles=8),
            )
        return base_open().with_overrides(system=cls.small_system)

    def test_recorder_is_passive_and_counts_streams(self):
        trace = build_trace("web_serving", 6_000, seed=5)
        recorder = LLCTraceRecorder()
        result = run_trace(trace, self.small_config(), warmup_fraction=0.0,
                           extra_agents=[recorder])
        assert recorder.accesses and recorder.misses and recorder.evictions
        assert len(recorder.misses) == result.counters["llc_misses"]
        assert 0.0 < recorder.llc_miss_ratio <= 1.0

    def test_miss_trace_is_replayable(self):
        trace = build_trace("web_serving", 4_000, seed=5)
        recorder = LLCTraceRecorder()
        run_trace(trace, base_open(), warmup_fraction=0.0, extra_agents=[recorder])
        replay = recorder.miss_trace()
        assert replay
        assert all(a.address % BLOCK_SIZE == 0 for a in replay)
        result = run_trace(replay, base_open(), warmup_fraction=0.0)
        assert result.total_dram_accesses > 0

    def test_capacity_bounds_memory(self):
        recorder = LLCTraceRecorder(capacity=10)
        trace = build_trace("web_serving", 4_000, seed=5)
        run_trace(trace, base_open(), warmup_fraction=0.0, extra_agents=[recorder])
        assert len(recorder.accesses) == 10
        assert recorder.stats["dropped_records"] > 0

    def test_clear_resets_everything(self):
        recorder = LLCTraceRecorder()
        trace = build_trace("web_serving", 2_000, seed=5)
        run_trace(trace, base_open(), warmup_fraction=0.0, extra_agents=[recorder])
        recorder.clear()
        assert not recorder.accesses and not recorder.misses and not recorder.evictions
        assert recorder.llc_miss_ratio == 0.0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LLCTraceRecorder(capacity=0)


@settings(max_examples=30, deadline=None)
@given(
    cores=st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=60),
)
def test_property_split_and_interleave_partition_the_trace(cores):
    trace = [access(core=core, address=index * BLOCK_SIZE)
             for index, core in enumerate(cores)]
    streams = split_by_core(trace)
    assert sum(len(s) for s in streams.values()) == len(trace)
    merged = interleave_round_robin(list(streams.values()))
    assert sorted(a.address for a in merged) == [a.address for a in trace]
