"""Unit tests for the DRAM bank timing model."""

import pytest

from repro.common.params import DDR3Timing
from repro.dram.bank import Bank, RowBufferOutcome


def make_bank():
    return Bank(DDR3Timing())


def test_first_access_is_a_row_miss_and_activates():
    bank = make_bank()
    outcome, issue, data_ready = bank.access(5, start_cycle=0.0, is_write=False,
                                             close_after=False)
    assert outcome is RowBufferOutcome.MISS
    assert bank.activations == 1
    assert bank.open_row == 5
    timing = DDR3Timing()
    assert issue == pytest.approx(timing.tRCD)
    assert data_ready == pytest.approx(timing.tRCD + timing.tCAS)


def test_second_access_to_same_row_hits():
    bank = make_bank()
    bank.access(5, 0.0, is_write=False, close_after=False)
    outcome, _, _ = bank.access(5, 0.0, is_write=False, close_after=False)
    assert outcome is RowBufferOutcome.HIT
    assert bank.activations == 1
    assert bank.row_hits == 1


def test_row_hits_stream_at_burst_cadence():
    """Back-to-back hits to the open row issue one burst apart.

    This is the property bulk streaming relies on to amortise an activation
    over sixteen transfers.
    """
    bank = make_bank()
    timing = DDR3Timing()
    bank.access(1, 0.0, is_write=False, close_after=False)
    _, first_issue, _ = bank.access(1, 0.0, is_write=False, close_after=False)
    _, second_issue, _ = bank.access(1, 0.0, is_write=False, close_after=False)
    assert second_issue - first_issue == pytest.approx(timing.burst_cycles)


def test_conflict_pays_precharge_and_activate():
    bank = make_bank()
    timing = DDR3Timing()
    bank.access(1, 0.0, is_write=False, close_after=False)
    outcome, issue, _ = bank.access(2, 0.0, is_write=False, close_after=False)
    assert outcome is RowBufferOutcome.CONFLICT
    assert bank.activations == 2
    # The conflict cannot be faster than precharge + activate after tRAS.
    assert issue >= timing.tRAS + timing.tRP + timing.tRCD


def test_close_after_leaves_bank_precharged():
    bank = make_bank()
    bank.access(3, 0.0, is_write=False, close_after=True)
    assert bank.open_row is None
    outcome, _, _ = bank.access(3, 0.0, is_write=False, close_after=False)
    # After a close-row access the next access is a miss, not a hit.
    assert outcome is RowBufferOutcome.MISS


def test_access_respects_start_cycle():
    bank = make_bank()
    _, issue, _ = bank.access(1, start_cycle=1000.0, is_write=False, close_after=False)
    assert issue >= 1000.0


def test_row_hit_ratio_property():
    bank = make_bank()
    assert bank.row_hit_ratio == 0.0
    bank.access(1, 0.0, False, False)
    bank.access(1, 0.0, False, False)
    bank.access(2, 0.0, False, False)
    assert bank.row_hit_ratio == pytest.approx(1.0 / 3.0)


def test_activation_spacing_respects_trc():
    bank = make_bank()
    timing = DDR3Timing()
    bank.access(1, 0.0, False, False)
    _, issue_conflict, _ = bank.access(2, 0.0, False, False)
    first_activate = 0.0
    second_activate = issue_conflict - timing.tRCD
    assert second_activate - first_activate >= timing.tRC


def test_hit_latency_smaller_than_miss_latency():
    """Measured from an idle bank, hit < miss < conflict service latency."""
    start = 1000.0

    hit_bank = make_bank()
    hit_bank.access(1, 0.0, False, False)
    _, _, hit_ready = hit_bank.access(1, start, False, False)

    miss_bank = make_bank()
    _, _, miss_ready = miss_bank.access(1, start, False, False)

    conflict_bank = make_bank()
    conflict_bank.access(1, 0.0, False, False)
    _, _, conflict_ready = conflict_bank.access(2, start, False, False)

    assert hit_ready - start < miss_ready - start < conflict_ready - start
