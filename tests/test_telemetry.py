"""Unit tests for the telemetry package (timeline, recorder, spans, events,
metrics, report rendering) and its chunk-boundary sampling discipline."""

import json

import numpy as np
import pytest

from repro.sim.config import bump_system
from repro.sim.runner import build_trace, run_trace
from repro.telemetry import (
    DELTA_COLUMNS,
    JobMetrics,
    MODES,
    TELEMETRY_ENV_VAR,
    TIMELINE_COLUMNS,
    SpanTracer,
    TelemetryRecorder,
    Timeline,
    campaign_metrics,
    peak_rss_bytes,
    read_campaign_metrics,
    read_events_jsonl,
    resolve_telemetry,
    timeline_from_events,
    validate_event,
    write_campaign_metrics,
    write_events_jsonl,
)
from repro.telemetry.report import (
    render_campaign,
    render_spans,
    render_timeline,
    summarize_events,
)


def _row(cycle=100.0, accesses=32.0):
    """One synthetic sample row in TIMELINE_COLUMNS order."""
    row = [0.0] * len(TIMELINE_COLUMNS)
    row[0] = cycle
    row[1] = accesses
    row[TIMELINE_COLUMNS.index("accesses")] = accesses
    row[TIMELINE_COLUMNS.index("instructions")] = 2 * accesses
    row[TIMELINE_COLUMNS.index("l1_hits")] = accesses / 2
    row[TIMELINE_COLUMNS.index("llc_hits")] = 8.0
    row[TIMELINE_COLUMNS.index("llc_misses")] = 8.0
    row[TIMELINE_COLUMNS.index("dram_accesses")] = 16.0
    row[TIMELINE_COLUMNS.index("row_hits")] = 4.0
    return row


class TestTimeline:
    def test_grows_past_initial_capacity(self):
        timeline = Timeline(capacity=2)
        for i in range(5):
            timeline.append(_row(cycle=float(i)))
        assert len(timeline) == 5
        assert timeline.column("cycle").tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_rejects_wrong_row_width_and_bad_capacity(self):
        with pytest.raises(ValueError):
            Timeline(capacity=0)
        with pytest.raises(ValueError):
            Timeline().append([1.0, 2.0])

    def test_columns_are_read_only_views(self):
        timeline = Timeline()
        timeline.append(_row())
        column = timeline.column("accesses")
        with pytest.raises(ValueError):
            column[0] = 999.0
        with pytest.raises(KeyError):
            timeline.column("no_such_column")

    def test_cumulative_sums_deltas_but_passes_absolutes_through(self):
        timeline = Timeline()
        timeline.append(_row(cycle=100.0, accesses=32.0))
        timeline.append(_row(cycle=200.0, accesses=32.0))
        assert timeline.cumulative("accesses").tolist() == [32.0, 64.0]
        assert timeline.cumulative("cycle").tolist() == [100.0, 200.0]

    def test_derived_rates_guard_zero_denominators(self):
        timeline = Timeline()
        timeline.append(_row(accesses=32.0))
        timeline.append([0.0] * len(TIMELINE_COLUMNS))  # empty interval
        derived = timeline.derived()
        assert derived["l1_hit_rate"].tolist() == [0.5, 0.0]
        assert derived["llc_hit_rate"].tolist() == [0.5, 0.0]
        assert derived["row_hit_rate"].tolist() == [0.25, 0.0]
        np.testing.assert_allclose(derived["mpki"][0], 1000.0 * 8.0 / 64.0)

    def test_totals_cover_every_delta_column(self):
        timeline = Timeline()
        timeline.append(_row(accesses=10.0))
        totals = timeline.totals()
        assert set(totals) == set(DELTA_COLUMNS)
        assert totals["accesses"] == 10.0


class TestModeResolution:
    def test_off_resolves_to_none(self, monkeypatch):
        monkeypatch.delenv(TELEMETRY_ENV_VAR, raising=False)
        assert resolve_telemetry() is None
        assert resolve_telemetry("off") is None

    def test_env_var_is_consulted_when_no_argument(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV_VAR, " chunks ")
        recorder = resolve_telemetry()
        assert recorder is not None and recorder.mode == "chunks"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV_VAR, "full")
        assert resolve_telemetry("off") is None

    def test_recorder_instances_pass_through(self):
        recorder = TelemetryRecorder("spans")
        assert resolve_telemetry(recorder) is recorder

    def test_unknown_modes_raise(self):
        with pytest.raises(ValueError):
            resolve_telemetry("verbose")
        with pytest.raises(ValueError):
            TelemetryRecorder("off")
        with pytest.raises(ValueError):
            TelemetryRecorder("everything")

    def test_modes_gate_what_is_recorded(self):
        chunks = TelemetryRecorder("chunks")
        assert chunks.wants_samples and not chunks.wants_spans
        assert chunks.timeline is not None and chunks.tracer is None
        spans = TelemetryRecorder("spans")
        assert spans.wants_spans and not spans.wants_samples
        assert spans.tracer is not None and spans.timeline is None
        full = TelemetryRecorder("full")
        assert full.wants_samples and full.wants_spans
        assert "off" in MODES and "full" in MODES


class TestSpanTracer:
    def test_span_context_manager_records_duration(self):
        tracer = SpanTracer()
        with tracer.span("compile", items=3):
            pass
        (event,) = tracer.events
        assert event["event"] == "span"
        assert event["name"] == "compile"
        assert event["duration_s"] >= 0.0
        assert event["counters"] == {"items": 3}

    def test_repeated_stages_fold_into_one_span(self):
        tracer = SpanTracer()
        for _ in range(10):
            tracer.add_stage("chunk_service", 0.25)
        tracer.flush_stages()
        (event,) = tracer.events
        assert event["name"] == "chunk_service"
        assert event["counters"] == {"calls": 10}
        np.testing.assert_allclose(event["duration_s"], 2.5)
        tracer.flush_stages()  # idempotent once drained
        assert len(tracer.events) == 1

    def test_marks_are_instantaneous(self):
        tracer = SpanTracer()
        tracer.mark("phase", phase="burst", accesses=4096)
        (event,) = tracer.events
        assert event["event"] == "mark"
        assert event["fields"] == {"phase": "burst", "accesses": 4096}


class TestEventLog:
    def _recorded(self):
        recorder = TelemetryRecorder("full")
        run_trace(build_trace("web_search", 5000), bump_system(),
                  telemetry=recorder)
        return recorder

    def test_jsonl_round_trip_rebuilds_the_timeline(self, tmp_path):
        recorder = self._recorded()
        path = recorder.write_jsonl(tmp_path / "run.jsonl")
        events = read_events_jsonl(path)
        assert events[0]["event"] == "meta"
        assert events[0]["columns"] == list(TIMELINE_COLUMNS)
        rebuilt = timeline_from_events(events)
        assert rebuilt.totals() == recorder.timeline.totals()
        assert rebuilt.column("cycle").tolist() == \
            recorder.timeline.column("cycle").tolist()

    def test_stream_contains_stage_spans_and_run_marks(self):
        events = self._recorded().events()
        names = {e.get("name") for e in events if e["event"] == "span"}
        assert {"chunk_service", "dram_drain", "result_assembly"} <= names
        marks = {e.get("name") for e in events if e["event"] == "mark"}
        assert {"run_start", "measurement_start", "run_end"} <= marks

    def test_validation_rejects_malformed_events(self):
        with pytest.raises(ValueError):
            validate_event({"event": "nope"})
        with pytest.raises(ValueError):
            validate_event({"event": "sample", "i": 0})
        with pytest.raises(ValueError):
            validate_event({"event": "sample", "i": 0, "data": {"cycle": True}})
        with pytest.raises(ValueError):
            validate_event({"event": "span", "name": "s", "start_s": "x",
                            "duration_s": 0.0, "counters": {}})
        with pytest.raises(ValueError):
            validate_event({"event": "meta", "schema": 99, "mode": "full",
                            "columns": [], "created_unix": 0.0})

    def test_reader_reports_line_numbers_and_meta_first(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"event": "meta", "schema": 1, "mode": "full", '
                       '"columns": [], "created_unix": 0.0}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_events_jsonl(bad)
        headless = tmp_path / "headless.jsonl"
        headless.write_text('{"event": "mark", "name": "m", "t_s": 0.0, '
                            '"fields": {}}\n')
        with pytest.raises(ValueError, match="must be 'meta'"):
            read_events_jsonl(headless)

    def test_writer_validates_on_the_way_out(self, tmp_path):
        with pytest.raises(ValueError):
            write_events_jsonl([{"event": "bogus"}], tmp_path / "x.jsonl")


class TestSamplingDiscipline:
    def test_one_sample_per_chunk_with_monotone_coordinates(self):
        trace = build_trace("web_serving", 6000)
        chunks = [trace[lo:lo + 1500] for lo in range(0, 6000, 1500)]
        recorder = TelemetryRecorder("chunks")
        run_trace(chunks, bump_system(), num_accesses=6000,
                  telemetry=recorder)
        timeline = recorder.timeline
        assert len(timeline) == len(chunks)
        cycles = timeline.column("cycle")
        assert (np.diff(cycles) >= 0).all()
        totals = timeline.column("accesses_total")
        assert (np.diff(totals) > 0).all()
        assert totals[-1] == 6000.0

    def test_timeline_totals_are_chunk_size_invariant(self):
        trace = build_trace("data_serving", 6000)
        totals = {}
        finals = {}
        for size in (1000, 3000):
            chunks = [trace[lo:lo + size] for lo in range(0, 6000, size)]
            recorder = TelemetryRecorder("chunks")
            run_trace(chunks, bump_system(), num_accesses=6000,
                      telemetry=recorder)
            totals[size] = recorder.timeline.totals()
            finals[size] = recorder.timeline.column("accesses_total")[-1]
        assert totals[1000] == totals[3000]
        assert finals[1000] == finals[3000]

    def test_one_recorder_can_observe_several_runs(self):
        recorder = TelemetryRecorder("full")
        trace = build_trace("web_search", 4000)
        run_trace(trace, bump_system(), telemetry=recorder)
        first = len(recorder.timeline)
        run_trace(trace, bump_system(), telemetry=recorder)
        assert len(recorder.timeline) == 2 * first
        runs = [e for e in recorder.events()
                if e["event"] == "mark" and e["name"] == "run_start"]
        assert [m["fields"]["run"] for m in runs] == [1, 2]


class TestCampaignMetrics:
    def _jobs(self):
        return [
            JobMetrics(label="a", workload="web_search", config="bump",
                       seed=0, source="simulated", wall_seconds=2.0,
                       peak_rss_bytes=1000, pid=11),
            JobMetrics(label="b", workload="web_search", config="base_open",
                       seed=0, source="simulated", wall_seconds=4.0,
                       peak_rss_bytes=3000, pid=12),
            JobMetrics(label="c", workload="web_serving", config="bump",
                       seed=0, source="store", wall_seconds=0.0,
                       peak_rss_bytes=2000, pid=11),
        ]

    def test_document_aggregates_per_job_costs(self):
        document = campaign_metrics(self._jobs(), elapsed_seconds=4.0,
                                    workers=2,
                                    store_stats={"hits": 1, "misses": 2})
        assert document["jobs_total"] == 3
        assert document["jobs_simulated"] == 2
        assert document["jobs_from_store"] == 1
        assert document["simulated_wall_seconds"] == 6.0
        assert document["worker_utilization"] == 6.0 / (2 * 4.0)
        assert document["max_job_wall_seconds"] == 4.0
        assert document["mean_job_wall_seconds"] == 3.0
        assert document["peak_rss_bytes"] == 3000
        assert document["wall_seconds_by_pid"] == {"11": 2.0, "12": 4.0}
        assert document["store"] == {"hits": 1, "misses": 2}

    def test_all_cached_campaign_has_zero_utilization(self):
        cached = [job for job in self._jobs() if job.source == "store"]
        document = campaign_metrics(cached, elapsed_seconds=0.0, workers=4)
        assert document["worker_utilization"] == 0.0
        assert document["mean_job_wall_seconds"] == 0.0

    def test_round_trip_and_schema_rejection(self, tmp_path):
        document = campaign_metrics(self._jobs(), elapsed_seconds=1.0,
                                    workers=1)
        path = write_campaign_metrics(document, tmp_path / "m" / "c.json")
        loaded = read_campaign_metrics(path)
        assert loaded == json.loads(json.dumps(document))
        assert [JobMetrics.from_dict(j) for j in loaded["jobs"]] == self._jobs()
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 99}')
        with pytest.raises(ValueError):
            read_campaign_metrics(bad)
        bad.write_text('[1, 2]')
        with pytest.raises(ValueError):
            read_campaign_metrics(bad)

    def test_peak_rss_is_positive_on_posix(self):
        assert peak_rss_bytes() > 0


class TestReportRendering:
    def test_timeline_table_elides_long_runs(self):
        timeline = Timeline()
        for i in range(100):
            timeline.append(_row(cycle=float(i)))
        text = render_timeline(timeline, max_rows=10)
        assert "cycle" in text
        assert "90 more sample(s)" in text

    def test_span_and_campaign_renderers(self, tmp_path):
        recorder = TelemetryRecorder("full")
        run_trace(build_trace("web_search", 4000), bump_system(),
                  telemetry=recorder)
        spans = render_spans(recorder.events())
        assert "chunk_service" in spans and "run_start" in spans
        document = campaign_metrics(
            [JobMetrics(label="a", workload="w", config="c", seed=0,
                        source="simulated", wall_seconds=1.0,
                        peak_rss_bytes=1 << 20, pid=1)],
            elapsed_seconds=1.0, workers=1)
        text = render_campaign(document)
        assert "worker_utilization" in text or "utilization" in text
        summary = summarize_events(recorder.events())
        assert summary["samples"] == len(recorder.timeline)
        assert summary["mode"] == "full"
