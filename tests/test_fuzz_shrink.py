"""Shrinker: an injected parity fault must reduce to a minimal reproducer."""

import copy
import json

import pytest

from repro.cache.flat import FlatSetAssociativeCache
from repro.fuzz import (
    generate_spec,
    load_spec,
    materialize,
    run_oracle,
    save_spec,
    shrink,
)

#: A deliberately bulky failing input: three phases, multi-tenant, bursts,
#: overrides and a warmup split -- plenty of structure for the shrinker to cut.
BULKY = {
    "format": 1,
    "label": "shrink-unit",
    "seed": 11,
    "warmup_fraction": 0.25,
    "chunk_size": 256,
    "scenario": {
        "num_cores": 8,
        "phases": [
            {"name": "ramp", "accesses": 600, "intensity": 1.2,
             "bursts": [[0.1, 0.3, 1.8]],
             "tenants": [
                 {"workload": "web_search", "cores": [0, 1]},
                 {"workload": "data_serving", "cores": [2, 3],
                  "intensity": 1.4},
                 {"workload": "media_streaming", "cores": [4]},
             ]},
            {"name": "steady", "accesses": 500,
             "tenants": [
                 {"workload": "web_search", "cores": [0, 1, 2, 3]},
                 {"workload": "data_serving", "cores": [5, 6]},
             ]},
            {"name": "tail", "accesses": 400,
             "tenants": [
                 {"workload": "media_streaming", "cores": [0]},
             ]},
        ],
    },
    "config": {"base": "bump",
               "overrides": {"page_policy": "close", "arrival_cpi": 2.5}},
}


@pytest.fixture
def flat_cache_fault(monkeypatch):
    """Rotate the flat cache's eviction victim by one way: the canonical
    'one engine drifted' bug class the differential oracle exists to catch."""
    original = FlatSetAssociativeCache._victim_slot

    def skewed(self, set_index, base):
        slot = original(self, set_index, base)
        return base + (slot - base + 1) % self.ways

    monkeypatch.setattr(FlatSetAssociativeCache, "_victim_slot", skewed)


class TestShrinkWithInjectedFault:
    def test_converges_to_a_minimal_reproducer(self, flat_cache_fault):
        result = shrink(BULKY, checks=("cube",))
        assert result.phases <= 1
        assert result.tenants <= 2
        assert result.total_accesses <= 600
        assert result.steps, "at least one reduction must be accepted"
        assert result.spec["label"] == "shrink-unit-min"

    def test_minimal_spec_still_fails(self, flat_cache_fault):
        result = shrink(BULKY, checks=("cube",))
        assert not run_oracle(result.spec, checks=("cube",)).ok

    def test_input_spec_is_not_mutated(self, flat_cache_fault):
        pristine = copy.deepcopy(BULKY)
        shrink(BULKY, checks=("cube",))
        assert BULKY == pristine

    def test_reproducer_round_trips_through_the_corpus(
            self, flat_cache_fault, tmp_path):
        result = shrink(BULKY, checks=("cube",))
        path = tmp_path / "reproducer.json"
        save_spec(result.spec, path)
        replayed = load_spec(path)
        assert replayed == result.spec
        assert not run_oracle(replayed, checks=("cube",)).ok

    def test_attempts_respect_the_budget(self, flat_cache_fault):
        result = shrink(BULKY, checks=("cube",), max_attempts=3)
        assert result.attempts <= 3


class TestShrinkGuards:
    def test_passing_spec_is_rejected(self):
        with pytest.raises(ValueError, match="nothing to shrink"):
            shrink(BULKY, checks=("cube",))

    def test_custom_predicate_drives_the_reduction(self):
        """No simulator involved: shrink against a pure structural predicate."""
        calls = []

        def has_web_search(spec):
            calls.append(1)
            return any(t["workload"] == "web_search"
                       for p in spec["scenario"]["phases"]
                       for t in p["tenants"])

        result = shrink(BULKY, is_failing=has_web_search)
        predicate_calls = len(calls)
        # Called once up-front plus at most once per attempt (invalid
        # candidates are discarded before the predicate runs).
        assert 1 <= predicate_calls <= result.attempts + 1
        assert has_web_search(result.spec)
        assert result.phases == 1
        assert result.tenants == 1

    def test_custom_predicate_must_fail_initially(self):
        with pytest.raises(ValueError, match="does not fail"):
            shrink(BULKY, is_failing=lambda spec: False)

    def test_shrunk_generator_spec_stays_valid(self):
        """Shrinking generator output yields specs materialize() accepts."""
        spec = generate_spec(2, 3)
        result = shrink(spec, is_failing=lambda s: True, max_attempts=40)
        materialize(result.spec)

    def test_reproducer_is_json_stable(self, flat_cache_fault, tmp_path):
        result = shrink(BULKY, checks=("cube",))
        path = tmp_path / "stable.json"
        save_spec(result.spec, path)
        text = path.read_text()
        assert json.loads(text) == json.loads(text)  # valid, parseable JSON
        assert "\n" in text  # pretty-printed for human review
