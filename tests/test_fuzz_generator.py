"""Spec generator: determinism, validity over the sampled surface, and the
corpus-stability pins that turn generator drift into a reviewed change."""

import pytest

from repro.fuzz import (
    corpus_fingerprint,
    generate_spec,
    iter_specs,
    materialize,
    spec_fingerprint,
)

#: Pinned digests of the first five specs of streams 0 and 1.  These values
#: change whenever the sampling logic, ranges or spec schema change -- which
#: silently re-shapes every seed's corpus and invalidates saved reproducer
#: provenance.  If you changed the generator ON PURPOSE, recompute with
#: ``python -c "from repro.fuzz import corpus_fingerprint;
#: print(corpus_fingerprint(0), corpus_fingerprint(1))"`` and update both
#: pins in the same commit.
_PINNED_STREAM_0 = "a86673678b5bc1022a6f2f20b8557d23"
_PINNED_STREAM_1 = "e961de94bfebf34d9585d15f859412da"


class TestDeterminism:
    def test_same_seed_index_same_spec(self):
        assert generate_spec(3, 17) == generate_spec(3, 17)

    def test_independent_of_generation_order(self):
        forward = [generate_spec(5, i) for i in range(6)]
        backward = [generate_spec(5, i) for i in reversed(range(6))]
        assert forward == list(reversed(backward))

    def test_streams_and_indices_differ(self):
        assert generate_spec(0, 0) != generate_spec(0, 1)
        assert generate_spec(0, 0) != generate_spec(1, 0)

    def test_iter_specs_offsets(self):
        tail = list(iter_specs(9, 3, start=2))
        assert tail == [generate_spec(9, i) for i in (2, 3, 4)]


class TestValidity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_first_twenty_specs_materialize(self, seed):
        """Every sample is valid by construction: constructors never reject."""
        for spec in iter_specs(seed, 20):
            case = materialize(spec)
            assert 0 < case.total_accesses <= 3 * 900
            assert case.scenario.num_cores in (2, 4, 8, 16)
            assert 0.0 <= case.warmup_fraction < 1.0
            assert case.chunk_size >= 64

    def test_surface_coverage_across_one_stream(self):
        """One 60-spec stream touches the axes the oracle differentiates on."""
        cases = [materialize(spec) for spec in iter_specs(0, 60)]
        assert {len(c.scenario.phases) for c in cases} >= {1, 2, 3}
        assert {c.config.interleaving for c in cases} == {"block", "region"}
        assert {c.config.page_policy.name for c in cases} == {"OPEN", "CLOSE"}
        assert {c.config.timing_model for c in cases} == {"analytic", "interval"}
        assert any(c.warmup_fraction == 0.0 for c in cases)
        assert any(p.bursts for c in cases for p in c.scenario.phases)
        assert any(len(p.active_cores) < c.scenario.num_cores
                   for c in cases for p in c.scenario.phases)
        assert len({c.config.name for c in cases}) >= 8
        closed = [c for c in cases if c.closed_loop is not None]
        assert closed and len(closed) < len(cases)
        assert all(c.closed_loop.interval >= 1 and
                   c.closed_loop.min_intensity <= c.closed_loop.max_intensity
                   for c in closed)

    def test_tenant_partitions_are_disjoint(self):
        for spec in iter_specs(4, 20):
            for phase in spec["scenario"]["phases"]:
                cores = [core for tenant in phase["tenants"]
                         for core in tenant["cores"]]
                assert len(cores) == len(set(cores))


class TestCorpusStability:
    def test_stream_0_is_pinned(self):
        assert corpus_fingerprint(0) == _PINNED_STREAM_0

    def test_stream_1_is_pinned(self):
        assert corpus_fingerprint(1) == _PINNED_STREAM_1

    def test_fingerprint_covers_the_requested_prefix(self):
        assert corpus_fingerprint(0, 5) != corpus_fingerprint(0, 10)

    def test_spec_fingerprint_ignores_the_label(self):
        spec = generate_spec(0, 0)
        relabeled = dict(spec, label="renamed")
        assert spec_fingerprint(spec) == spec_fingerprint(relabeled)

    def test_spec_fingerprint_sees_content(self):
        spec = generate_spec(0, 0)
        changed = dict(spec, seed=spec["seed"] + 1)
        assert spec_fingerprint(spec) != spec_fingerprint(changed)
