"""Integration tests: whole-system runs on a scaled-down server.

These tests run short synthetic traces through complete ServerSystem
instances.  To keep them fast they scale the LLC down (so evictions,
writebacks and region terminations happen within a few thousand accesses)
while keeping every mechanism — L1 filter, LLC, prefetchers, BuMP, FR-FCFS
DRAM, energy and timing — in the loop.
"""

import pytest

from repro.common.params import CacheParams, SystemParams
from repro.sim.config import (
    base_close,
    base_open,
    bump_system,
    full_region_system,
    ideal_system,
    named_configs,
    vwq_system,
)
from repro.sim.runner import build_trace, run_configs, run_trace, run_workload
from repro.sim.system import ServerSystem
from repro.workloads.catalog import get_workload

#: A scaled-down memory hierarchy: a 1MB LLC keeps coarse-object scans alive
#: long enough for region tracking to matter while letting a ~50k-access
#: trace reach steady-state evictions quickly.
SMALL_SYSTEM = SystemParams().scaled(
    llc=CacheParams(size_bytes=1024 * 1024, associativity=16, hit_latency_cycles=8),
)
TRACE_LENGTH = 52_000
WARMUP = 0.4


def small(config):
    return config.with_overrides(system=SMALL_SYSTEM)


@pytest.fixture(scope="module")
def trace():
    return build_trace("web_search", TRACE_LENGTH, num_cores=16, seed=42)


@pytest.fixture(scope="module")
def small_results(trace):
    configs = [small(base_close()), small(base_open()), small(vwq_system()),
               small(bump_system()), small(full_region_system()), small(ideal_system())]
    return {
        config.name: run_trace(trace, config, workload_name="web_search",
                               warmup_fraction=WARMUP)
        for config in configs
    }


def test_traffic_conservation(small_results):
    """Every DRAM transfer must be attributed to exactly one provenance."""
    for name, result in small_results.items():
        dram_reads = result.dram["reads"]
        dram_writes = result.dram["writes"]
        assert dram_reads == pytest.approx(result.total_dram_reads), name
        assert dram_writes == pytest.approx(result.total_dram_writes), name
        assert result.total_dram_accesses > 0, name


def test_baseline_generates_reads_and_writebacks(small_results):
    base = small_results["base_open"]
    assert base.demand_reads > 0
    assert base.demand_writebacks > 0
    assert 0.05 < base.write_traffic_share < 0.6
    assert base.load_triggered_reads > base.store_triggered_reads > 0


def test_bump_improves_row_buffer_locality(small_results):
    assert (small_results["bump"].row_buffer_hit_ratio
            > small_results["base_open"].row_buffer_hit_ratio + 0.15)
    assert (small_results["base_open"].row_buffer_hit_ratio
            >= small_results["base_close"].row_buffer_hit_ratio)


def test_bump_covers_reads_and_writes(small_results):
    bump = small_results["bump"]
    assert bump.read_coverage > 0.2
    assert bump.write_coverage > 0.2
    assert bump.read_overfetch < 1.0
    base = small_results["base_open"]
    assert base.read_coverage < bump.read_coverage


def test_bump_reduces_memory_energy_per_access(small_results):
    assert (small_results["bump"].memory_energy_per_access_nj
            < small_results["base_open"].memory_energy_per_access_nj
            < small_results["base_close"].memory_energy_per_access_nj)


def test_full_region_overfetches_and_saturates_bandwidth(small_results):
    full = small_results["full_region"]
    bump = small_results["bump"]
    assert full.read_overfetch > 3 * bump.read_overfetch
    assert full.total_dram_accesses > 1.5 * bump.total_dram_accesses
    assert full.throughput_ipc < 0.8 * small_results["base_open"].throughput_ipc


def test_vwq_improves_write_locality_only(small_results):
    vwq = small_results["vwq"]
    base = small_results["base_open"]
    assert vwq.bulk_writebacks > 0
    assert vwq.row_buffer_hit_ratio > base.row_buffer_hit_ratio
    assert vwq.read_coverage <= base.read_coverage + 0.05


def test_ideal_row_hit_tops_every_real_system(small_results):
    ideal = small_results["ideal"]
    assert ideal.row_buffer_hit_ratio >= small_results["bump"].row_buffer_hit_ratio - 0.05
    assert ideal.density is not None
    assert ideal.density.read_density["high"] > 0.3


def test_energy_breakdown_present_and_positive(small_results):
    for name, result in small_results.items():
        assert result.energy is not None, name
        assert result.energy.total_nj > 0, name
        assert 0.0 < result.energy.memory_share < 1.0, name
        assert result.cycles > 0 and result.throughput_ipc > 0, name


def test_noc_traffic_larger_with_bump(small_results):
    assert small_results["bump"].noc["bytes"] > small_results["base_open"].noc["bytes"]


def test_warmup_discards_cold_start_effects(trace):
    config = small(base_open())
    cold = run_trace(trace, config, warmup_fraction=0.0)
    warm = run_trace(trace, config, warmup_fraction=0.5)
    # The warmed run must observe fewer accesses, and excluding the cold-start
    # interval must remove compulsory misses from the measurement: fewer
    # demand DRAM reads per access and a higher L1 hit ratio.
    assert warm.counters["accesses"] < cold.counters["accesses"]
    assert (warm.demand_reads / warm.counters["accesses"]
            <= cold.demand_reads / cold.counters["accesses"])
    assert (warm.counters["l1_hits"] / warm.counters["accesses"]
            >= cold.counters["l1_hits"] / cold.counters["accesses"])


def test_warmup_longer_than_trace_is_rejected():
    system = ServerSystem(small(base_open()))
    trace = build_trace("web_search", 100, num_cores=4, seed=1)
    with pytest.raises(ValueError):
        system.run(trace, warmup_accesses=1000)


def test_run_workload_and_named_config_helpers():
    # The trace cache keys on the spec's content fingerprint, so the
    # ``with_overrides()`` copy may safely share the catalog spec's cache
    # entry -- no cache clearing needed.
    result = run_workload(get_workload("media_streaming").with_overrides(),
                          small(base_open()), num_accesses=6000, warmup_fraction=0.3)
    assert result.workload == "media_streaming"
    assert result.total_dram_accesses > 0


def test_results_are_deterministic_for_identical_runs(trace):
    config = small(bump_system())
    first = run_trace(trace, config, warmup_fraction=WARMUP)
    second = run_trace(trace, config, warmup_fraction=WARMUP)
    assert first.row_buffer_hit_ratio == pytest.approx(second.row_buffer_hit_ratio)
    assert first.total_dram_accesses == second.total_dram_accesses
    assert first.throughput_ipc == pytest.approx(second.throughput_ipc)


def test_invalid_interleaving_rejected():
    with pytest.raises(ValueError):
        ServerSystem(base_open().with_overrides(interleaving="page"))


def test_all_named_configs_run_end_to_end(trace):
    for name, config in named_configs().items():
        result = run_trace(trace[:6000], small(config), warmup_fraction=0.25)
        assert result.total_dram_accesses > 0, name
        assert result.throughput_ipc > 0, name
