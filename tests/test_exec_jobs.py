"""Job grid expansion and content fingerprints (repro.exec.jobs)."""

import pytest

from repro.core.config import BuMPConfig
from repro.exec.jobs import (
    JobGrid,
    JobSpec,
    config_fingerprint,
    expand_grid,
    fingerprint,
    workload_fingerprint,
)
from repro.sim.config import base_open, bump_system
from repro.workloads.catalog import get_workload


class TestFingerprints:
    def test_equal_configs_fingerprint_equal(self):
        assert config_fingerprint(bump_system()) == config_fingerprint(bump_system())

    def test_fingerprint_is_content_based_not_name_based(self):
        renamed = bump_system().with_overrides(name="bump_relabelled")
        assert config_fingerprint(renamed) == config_fingerprint(bump_system())

    def test_nested_knob_changes_fingerprint(self):
        tweaked = bump_system(bump=BuMPConfig(density_threshold_blocks=9))
        assert config_fingerprint(tweaked) != config_fingerprint(bump_system())

    def test_top_level_field_changes_fingerprint(self):
        assert (config_fingerprint(base_open())
                != config_fingerprint(base_open().with_overrides(scheduler="fcfs")))

    def test_workload_fingerprint_tracks_spec_contents(self):
        spec = get_workload("web_search")
        assert workload_fingerprint(spec) == workload_fingerprint(get_workload("web_search"))
        assert (workload_fingerprint(spec.with_overrides(popularity_skew=0.9))
                != workload_fingerprint(spec))

    def test_fingerprint_is_stable_across_calls(self):
        job = JobSpec(workload="web_search", config=bump_system(), num_accesses=1000)
        assert job.result_fingerprint() == job.result_fingerprint()
        assert job.trace_fingerprint() == job.trace_fingerprint()

    def test_result_key_covers_every_grid_axis(self):
        base = JobSpec(workload="web_search", config=bump_system(),
                       num_accesses=1000, num_cores=4, seed=1, warmup_fraction=0.25)
        variants = [
            base.__class__(workload="web_serving", config=base.config,
                           num_accesses=1000, num_cores=4, seed=1, warmup_fraction=0.25),
            base.__class__(workload="web_search", config=base_open(),
                           num_accesses=1000, num_cores=4, seed=1, warmup_fraction=0.25),
            base.__class__(workload="web_search", config=base.config,
                           num_accesses=2000, num_cores=4, seed=1, warmup_fraction=0.25),
            base.__class__(workload="web_search", config=base.config,
                           num_accesses=1000, num_cores=8, seed=1, warmup_fraction=0.25),
            base.__class__(workload="web_search", config=base.config,
                           num_accesses=1000, num_cores=4, seed=2, warmup_fraction=0.25),
            base.__class__(workload="web_search", config=base.config,
                           num_accesses=1000, num_cores=4, seed=1, warmup_fraction=0.5),
        ]
        digests = {base.result_fingerprint()} | {v.result_fingerprint() for v in variants}
        assert len(digests) == len(variants) + 1

    def test_fingerprint_handles_plain_values(self):
        assert fingerprint({"a": (1, 2)}) == fingerprint({"a": [1, 2]})
        assert fingerprint(1.5) == fingerprint(1.5)


class TestJobSpec:
    def test_workload_name_is_resolved_to_spec(self):
        job = JobSpec(workload="web_search", config=base_open())
        assert job.workload.name == "web_search"

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(workload="web_search", config=base_open(), num_accesses=0)
        with pytest.raises(ValueError):
            JobSpec(workload="web_search", config=base_open(), warmup_fraction=1.0)

    def test_label_mentions_workload_and_system(self):
        job = JobSpec(workload="web_search", config=bump_system(), seed=7)
        assert "web_search" in job.label and "bump" in job.label and "s7" in job.label


class TestJobGrid:
    def test_expansion_is_the_cartesian_product(self):
        grid = JobGrid(workloads=["web_search", "web_serving"],
                       configs=["base_open", "bump", "vwq"],
                       seeds=(1, 2), num_accesses=1000)
        jobs = grid.expand()
        assert len(jobs) == 2 * 3 * 2
        assert len(grid) == 12
        labels = {(j.workload.name, j.config.name, j.seed) for j in jobs}
        assert ("web_serving", "vwq", 2) in labels

    def test_duplicate_cells_are_dropped(self):
        renamed = base_open().with_overrides(name="base_open_again")
        jobs = expand_grid(["web_search"], [base_open(), renamed], num_accesses=1000)
        assert len(jobs) == 1

    def test_dedup_can_be_disabled(self):
        grid = JobGrid(workloads=["web_search"],
                       configs=[base_open(), base_open()], num_accesses=1000)
        assert len(grid.expand(dedup=False)) == 2

    def test_accepts_config_objects_and_names_mixed(self):
        jobs = expand_grid(["web_search"], ["base_open", bump_system()],
                           num_accesses=1000)
        assert [j.config.name for j in jobs] == ["base_open", "bump"]
