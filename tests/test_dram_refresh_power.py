"""Tests for the refresh scheduler and the IDD-based DRAM power model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import DDR3Timing, DRAMOrganization
from repro.dram.power import (
    DRAMPowerModel,
    IDDCurrents,
    RankActivity,
    activity_from_counters,
)
from repro.dram.refresh import RefreshParams, RefreshScheduler
from repro.energy.params import DRAMEnergyParams


class TestRefreshScheduler:
    def test_unavailability_is_a_few_percent(self):
        scheduler = RefreshScheduler()
        assert 0.01 < scheduler.unavailability < 0.05

    def test_refreshes_scale_with_elapsed_time(self):
        scheduler = RefreshScheduler()
        short = scheduler.refreshes_in(10_000)
        long = scheduler.refreshes_in(100_000)
        assert long == pytest.approx(10 * short)

    def test_total_refreshes_cover_every_rank(self):
        org = DRAMOrganization(channels=2, ranks_per_channel=4)
        scheduler = RefreshScheduler(org=org)
        per_rank = scheduler.refreshes_in(50_000)
        assert scheduler.total_refreshes_in(50_000) == pytest.approx(8 * per_rank)

    def test_refresh_energy_grows_linearly_with_time(self):
        scheduler = RefreshScheduler()
        assert scheduler.refresh_energy_nj(0.0) == 0.0
        one = scheduler.refresh_energy_nj(0.001)
        two = scheduler.refresh_energy_nj(0.002)
        assert two == pytest.approx(2 * one)

    def test_refresh_power_is_a_fraction_of_background_power(self):
        scheduler = RefreshScheduler()
        # Refresh should cost far less than the rank background power budget
        # (540-770 mW per rank in Table III), but must be non-zero.
        per_rank_w = scheduler.refresh_power_w() / 8
        assert 0.005 < per_rank_w < 0.2

    def test_open_row_does_not_survive_a_refresh_interval(self):
        scheduler = RefreshScheduler()
        interval = scheduler.params.tREFI_cycles
        assert scheduler.survives_refresh(interval * 0.5)
        assert not scheduler.survives_refresh(interval * 1.5)

    def test_schedule_cycles_are_evenly_spaced(self):
        scheduler = RefreshScheduler()
        cycles = scheduler.schedule_cycles(5 * scheduler.params.tREFI_cycles)
        assert len(cycles) == 5
        gaps = [b - a for a, b in zip(cycles, cycles[1:])]
        assert all(gap == pytest.approx(scheduler.params.tREFI_cycles) for gap in gaps)

    def test_refreshes_per_window_matches_ddr3_spec(self):
        # 64 ms / 7.8 us = 8192 refresh commands per retention window.
        assert RefreshParams().refreshes_per_window == 8205 or \
            abs(RefreshParams().refreshes_per_window - 8192) < 32


class TestIDDPowerModel:
    def make_activity(self, **overrides):
        defaults = dict(elapsed_cycles=100_000, activations=500,
                        read_cycles=8_000, write_cycles=2_000)
        defaults.update(overrides)
        return RankActivity(**defaults)

    def test_idle_rank_power_is_background_plus_refresh_only(self):
        model = DRAMPowerModel()
        idle = RankActivity(elapsed_cycles=100_000, activations=0,
                            read_cycles=0, write_cycles=0,
                            any_bank_open_fraction=0.0)
        breakdown = model.rank_power(idle)
        assert breakdown.activate_w == 0.0
        assert breakdown.read_w == 0.0
        assert breakdown.write_w == 0.0
        assert breakdown.termination_w == 0.0
        assert breakdown.background_w > 0.0
        assert breakdown.total_w == pytest.approx(
            breakdown.background_w + breakdown.refresh_w
        )

    def test_background_power_in_table3_band(self):
        """Idle and fully-active background power should bracket Table III's
        540-770 mW per-rank range (within a loose fidelity band)."""
        model = DRAMPowerModel()
        idle = model.background_power_w(
            RankActivity(100_000, 0, 0, 0, any_bank_open_fraction=0.0)
        )
        busy = model.background_power_w(
            RankActivity(100_000, 0, 0, 0, any_bank_open_fraction=1.0)
        )
        params = DRAMEnergyParams()
        assert idle < busy
        assert idle == pytest.approx(params.background_power_idle_w, rel=0.4)
        assert busy == pytest.approx(params.background_power_active_w, rel=0.4)

    def test_powerdown_reduces_background_power(self):
        model = DRAMPowerModel()
        awake = model.background_power_w(
            RankActivity(100_000, 0, 0, 0, any_bank_open_fraction=0.5,
                         powerdown_fraction=0.0)
        )
        asleep = model.background_power_w(
            RankActivity(100_000, 0, 0, 0, any_bank_open_fraction=0.5,
                         powerdown_fraction=0.9)
        )
        assert asleep < awake

    def test_activate_power_scales_with_activation_rate(self):
        model = DRAMPowerModel()
        sparse = model.activate_power_w(self.make_activity(activations=100))
        dense = model.activate_power_w(self.make_activity(activations=1000))
        assert dense > sparse
        assert model.activate_power_w(self.make_activity(activations=0)) == 0.0

    def test_activate_power_saturates_at_trc_cadence(self):
        model = DRAMPowerModel()
        timing = DDR3Timing()
        at_spec = self.make_activity(
            activations=100_000 / timing.tRC, elapsed_cycles=100_000
        )
        beyond_spec = self.make_activity(activations=100_000, elapsed_cycles=100_000)
        assert model.activate_power_w(beyond_spec) == pytest.approx(
            model.activate_power_w(at_spec)
        )

    def test_burst_power_scales_with_duty_cycle(self):
        model = DRAMPowerModel()
        light = self.make_activity(read_cycles=1_000, write_cycles=0)
        heavy = self.make_activity(read_cycles=50_000, write_cycles=0)
        assert model.read_power_w(heavy) > model.read_power_w(light)
        assert model.write_power_w(light) == 0.0

    def test_termination_power_includes_other_ranks(self):
        lonely = DRAMPowerModel(org=DRAMOrganization(ranks_per_channel=1))
        crowded = DRAMPowerModel(org=DRAMOrganization(ranks_per_channel=4))
        activity = self.make_activity()
        assert crowded.termination_power_w(activity) > lonely.termination_power_w(activity)

    def test_activation_energy_matches_table3_constant_roughly(self):
        model = DRAMPowerModel()
        table3 = DRAMEnergyParams().activation_energy_nj
        assert model.activation_energy_nj() == pytest.approx(table3, rel=0.5)

    def test_transfer_energy_matches_table3_constant_roughly(self):
        model = DRAMPowerModel()
        params = DRAMEnergyParams()
        assert model.transfer_energy_nj(is_write=False) == pytest.approx(
            params.read_transfer_energy_nj, rel=0.6
        )
        assert model.transfer_energy_nj(is_write=True) == pytest.approx(
            params.write_transfer_energy_nj, rel=0.6
        )

    def test_rank_energy_integrates_power_over_time(self):
        model = DRAMPowerModel()
        breakdown = model.rank_power(self.make_activity())
        assert breakdown.energy_nj(2.0) == pytest.approx(2 * breakdown.energy_nj(1.0))

    def test_activity_from_counters_divides_across_ranks(self):
        activity = activity_from_counters(elapsed_cycles=10_000, activations=400,
                                          reads=800, writes=200, ranks_sharing=4)
        assert activity.activations == 100
        assert activity.read_cycles == 800
        assert activity.write_cycles == 200

    def test_custom_currents_propagate(self):
        cheap = IDDCurrents(idd3n=30.0, idd2n=20.0)
        model = DRAMPowerModel(currents=cheap)
        default = DRAMPowerModel()
        activity = self.make_activity(any_bank_open_fraction=1.0)
        assert model.background_power_w(activity) < default.background_power_w(activity)


@settings(max_examples=50, deadline=None)
@given(
    activations=st.integers(min_value=0, max_value=5000),
    reads=st.integers(min_value=0, max_value=20000),
    writes=st.integers(min_value=0, max_value=20000),
    open_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_rank_power_is_nonnegative_and_monotone_in_activity(
    activations, reads, writes, open_fraction
):
    model = DRAMPowerModel()
    elapsed = 200_000.0
    base = RankActivity(elapsed, activations, reads * 4.0, writes * 4.0,
                        any_bank_open_fraction=open_fraction)
    breakdown = model.rank_power(base)
    assert breakdown.total_w >= 0.0
    assert breakdown.background_w >= 0.0

    busier = RankActivity(elapsed, activations + 100, reads * 4.0 + 400,
                          writes * 4.0 + 400, any_bank_open_fraction=open_fraction)
    assert model.rank_power(busier).dynamic_w >= breakdown.dynamic_w
