"""Differential oracle: cells, subsets, skip semantics, fault sensitivity."""

import pytest

from repro.cache.flat import FlatSetAssociativeCache
from repro.fuzz import CHECKS, materialize, run_oracle
from repro.fuzz.oracle import REFERENCE_CELL, _perturbed_chunk_size

#: A small hand-written spec covering two tenants, a burst, an idle core and
#: a warmup split -- every check runs, nothing is slow.
SPEC = {
    "format": 1,
    "label": "oracle-unit",
    "seed": 7,
    "warmup_fraction": 0.3,
    "chunk_size": 128,
    "scenario": {
        "num_cores": 4,
        "phases": [
            {"name": "p0", "accesses": 800,
             "bursts": [[0.2, 0.4, 2.0]],
             "tenants": [
                 {"workload": "web_search", "cores": [0, 1]},
                 {"workload": "data_serving", "cores": [2],
                  "intensity": 1.5},
             ]},
        ],
    },
    "config": {"base": "bump"},
}


def _skewed_victim(original):
    """The injected parity fault: rotate the flat cache's victim choice by
    one way -- a minimal 'stamp bump' that leaves the dict engine alone."""
    def skewed(self, set_index, base):
        slot = original(self, set_index, base)
        return base + (slot - base + 1) % self.ways
    return skewed


class TestHealthyOracle:
    def test_all_checks_pass_on_a_valid_spec(self):
        report = run_oracle(SPEC)
        assert report.ok
        assert report.failed_checks == []
        ran = {c.check for c in report.checks if not c.skipped}
        assert ran == set(CHECKS)

    def test_check_subset_runs_only_that_axis(self):
        report = run_oracle(SPEC, checks=("chunk",))
        assert report.ok
        assert {c.check for c in report.checks} == {"chunk"}

    def test_snapshot_check_skipped_without_warmup(self):
        spec = dict(SPEC, warmup_fraction=0.0)
        report = run_oracle(spec, checks=("snapshot",))
        assert report.ok
        (check,) = report.checks
        assert check.skipped

    def test_unknown_check_is_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle checks"):
            run_oracle(SPEC, checks=("cube", "vibes"))

    def test_malformed_spec_is_rejected(self):
        with pytest.raises(ValueError, match="format"):
            run_oracle(dict(SPEC, format=99))

    def test_perturbed_chunk_size_differs(self):
        for size in (64, 128, 256, 512, 1024, 2048):
            assert _perturbed_chunk_size(size) != size

    def test_reference_cell_is_the_object_engines(self):
        assert REFERENCE_CELL == ("dict", "object", "scalar")


class TestFaultSensitivity:
    def test_injected_flat_cache_fault_is_caught(self, monkeypatch):
        """The oracle exists to see exactly this: a flat-engine divergence
        the fixed parity matrix might miss on its hand-picked inputs."""
        monkeypatch.setattr(
            FlatSetAssociativeCache, "_victim_slot",
            _skewed_victim(FlatSetAssociativeCache._victim_slot))
        report = run_oracle(SPEC, checks=("cube",))
        assert not report.ok
        # Every flat cell diverges; the dict cells still match the reference.
        failing = {c.cell for c in report.failures}
        assert failing == {"flat/object/scalar", "flat/flat/scalar",
                           "flat/object/vector", "flat/flat/vector"}

    def test_report_describe_names_the_failures(self, monkeypatch):
        monkeypatch.setattr(
            FlatSetAssociativeCache, "_victim_slot",
            _skewed_victim(FlatSetAssociativeCache._victim_slot))
        report = run_oracle(SPEC, checks=("cube",))
        text = report.describe()
        assert "FAIL" in text and "flat/flat/vector" in text


class TestMaterialize:
    def test_round_trips_the_declared_surface(self):
        case = materialize(SPEC)
        assert case.scenario.num_cores == 4
        assert case.total_accesses == 800
        assert case.warmup_accesses == 240
        assert case.config.name == "bump"
        (phase,) = case.scenario.phases
        assert phase.active_cores == (0, 1, 2)   # core 3 idle
        assert phase.bursts[0].intensity == 2.0

    def test_overrides_decode_and_validate(self):
        spec = dict(SPEC)
        spec["config"] = {"base": "base_open",
                          "overrides": {"page_policy": "close",
                                        "interleaving": "block",
                                        "timing_model": "interval",
                                        "arrival_cpi": 3.5}}
        config = materialize(spec).config
        assert config.page_policy.name == "CLOSE"
        assert config.interleaving == "block"
        assert config.timing_model == "interval"
        assert config.arrival_cpi == 3.5

    def test_unknown_override_is_rejected(self):
        spec = dict(SPEC)
        spec["config"] = {"base": "base_open",
                          "overrides": {"use_bump": True}}
        with pytest.raises(ValueError, match="unsupported configuration"):
            materialize(spec)

    def test_unknown_base_config_is_rejected(self):
        spec = dict(SPEC)
        spec["config"] = {"base": "warp_drive"}
        with pytest.raises(ValueError, match="warp_drive"):
            materialize(spec)

    def test_bad_page_policy_is_rejected(self):
        spec = dict(SPEC)
        spec["config"] = {"base": "base_open",
                          "overrides": {"page_policy": "ajar"}}
        with pytest.raises(ValueError, match="ajar"):
            materialize(spec)
