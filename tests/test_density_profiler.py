"""Unit tests for the region access density profiler (Figure 5 / Table I)."""

import pytest

from repro.common.addressing import BLOCK_SIZE, REGION_SIZE
from repro.common.request import LLCRequest, LLCRequestKind
from repro.cache.set_assoc import EvictedLine
from repro.workloads.density import RegionDensityProfiler, density_class


def access(pc, address, store=False):
    kind = LLCRequestKind.DEMAND_WRITE if store else LLCRequestKind.DEMAND_READ
    return LLCRequest(core=0, pc=pc, block_address=address, kind=kind, is_store=store)


def evicted(address, dirty=False):
    return EvictedLine(block_address=address, dirty=dirty, prefetched=False, used=True)


def block(region, offset):
    return region * REGION_SIZE + offset * BLOCK_SIZE


def test_density_class_boundaries():
    assert density_class(0.0) == "low"
    assert density_class(0.24) == "low"
    assert density_class(0.25) == "medium"
    assert density_class(0.49) == "medium"
    assert density_class(0.5) == "high"
    assert density_class(1.0) == "high"


def test_dense_read_region_classified_high():
    profiler = RegionDensityProfiler()
    for offset in range(12):
        profiler.on_access(access(1, block(0, offset)), hit=False)
    profiler.on_eviction(evicted(block(0, 0)))
    report = profiler.report()
    assert report.read_density["high"] == pytest.approx(1.0)
    assert report.total_reads == 12


def test_sparse_regions_classified_low():
    profiler = RegionDensityProfiler()
    for region in range(10):
        profiler.on_access(access(1, block(region, 0)), hit=False)
        profiler.on_eviction(evicted(block(region, 0)))
    report = profiler.report()
    assert report.read_density["low"] == pytest.approx(1.0)


def test_mixed_density_weighted_by_accesses():
    profiler = RegionDensityProfiler()
    # One dense region with 8 misses, one sparse region with 2 misses.
    for offset in range(8):
        profiler.on_access(access(1, block(0, offset)), hit=False)
    for offset in (0, 1):
        profiler.on_access(access(1, block(1, offset)), hit=False)
    report = profiler.report()
    assert report.read_density["high"] == pytest.approx(0.8)
    assert report.read_density["low"] + report.read_density["medium"] == pytest.approx(0.2)


def test_write_density_tracks_modified_blocks():
    profiler = RegionDensityProfiler()
    for offset in range(10):
        profiler.on_access(access(1, block(3, offset), store=True), hit=False)
    for offset in range(10):
        profiler.on_eviction(evicted(block(3, offset), dirty=True))
    report = profiler.report()
    assert report.write_density["high"] == pytest.approx(1.0)
    assert report.total_writes == 10


def test_late_write_fraction_measures_post_eviction_stores():
    profiler = RegionDensityProfiler()
    # 8 blocks written, then the first dirty eviction, then 2 more blocks
    # written while the region's blocks are still trickling out (LLC hits).
    for offset in range(8):
        profiler.on_access(access(1, block(5, offset), store=True), hit=False)
    profiler.on_eviction(evicted(block(5, 0), dirty=True))
    for offset in (8, 9):
        profiler.on_access(access(1, block(5, offset), store=True), hit=True)
    report = profiler.report()
    assert report.late_write_fraction == pytest.approx(2 / 10)


def test_ideal_row_hit_ratio_counts_one_activation_per_lifetime():
    profiler = RegionDensityProfiler()
    # 16 reads to one region within a lifetime: 15 of 16 could be row hits.
    for offset in range(16):
        profiler.on_access(access(1, block(7, offset)), hit=False)
    profiler.on_eviction(evicted(block(7, 0)))
    report = profiler.report()
    assert report.ideal_row_hit_ratio == pytest.approx(15 / 16)


def test_new_lifetime_starts_after_termination_and_refetch():
    profiler = RegionDensityProfiler()
    for offset in range(4):
        profiler.on_access(access(1, block(9, offset)), hit=False)
    profiler.on_eviction(evicted(block(9, 0)))
    # The region is touched again later, missing in the LLC: a new lifetime.
    for offset in range(2):
        profiler.on_access(access(1, block(9, offset)), hit=False)
    report = profiler.report()
    assert report.total_reads == 6


def test_high_density_access_fraction_combines_reads_and_writes():
    profiler = RegionDensityProfiler()
    for offset in range(12):
        profiler.on_access(access(1, block(0, offset), store=True), hit=False)
    for offset in range(12):
        profiler.on_eviction(evicted(block(0, offset), dirty=True))
    report = profiler.report()
    assert report.high_density_access_fraction == pytest.approx(1.0)
