"""Unit tests for the SimulationResult metric derivations."""

import pytest

from repro.energy.accounting import MemoryEnergyPerAccess
from repro.sim.results import SimulationResult


def make_result(**counters):
    result = SimulationResult(workload="unit", config_name="test")
    result.counters.update(counters)
    return result


def test_traffic_decomposition_sums():
    result = make_result(
        demand_reads=100, covered_reads=50, prefetch_reads=30, bulk_reads=40,
        demand_writebacks=20, eager_writebacks=5, bulk_writebacks=15,
    )
    assert result.useful_reads == 150
    assert result.prefetch_reads == 70
    assert result.total_dram_reads == 170
    assert result.total_dram_writes == 40
    assert result.total_dram_accesses == 210
    assert result.useful_accesses == 190


def test_coverage_and_overfetch_ratios():
    result = make_result(demand_reads=60, covered_reads=40,
                         demand_writebacks=10, bulk_writebacks=30)
    result.llc.set("overfetched_blocks", 25)
    assert result.read_coverage == pytest.approx(0.4)
    assert result.read_overfetch == pytest.approx(0.25)
    assert result.write_coverage == pytest.approx(0.75)


def test_ratios_are_zero_without_traffic():
    result = make_result()
    assert result.read_coverage == 0.0
    assert result.read_overfetch == 0.0
    assert result.write_coverage == 0.0
    assert result.write_traffic_share == 0.0
    assert result.memory_energy_per_access_nj == 0.0


def test_write_traffic_share():
    result = make_result(demand_reads=70, demand_writebacks=30)
    assert result.write_traffic_share == pytest.approx(0.3)


def test_read_breakdown_by_trigger_type():
    result = make_result(load_triggered_reads=80, store_triggered_reads=20)
    assert result.load_triggered_reads == 80
    assert result.store_triggered_reads == 20


def test_memory_energy_exposed_through_property():
    result = make_result(demand_reads=10)
    result.memory_energy = MemoryEnergyPerAccess(activation_nj=10.0, burst_io_nj=5.0)
    assert result.memory_energy_per_access_nj == pytest.approx(15.0)


def test_summary_contains_headline_metrics():
    result = make_result(demand_reads=10, covered_reads=10, demand_writebacks=5)
    result.row_buffer_hit_ratio = 0.5
    result.throughput_ipc = 12.0
    summary = result.summary()
    assert summary["row_buffer_hit_ratio"] == 0.5
    assert summary["read_coverage"] == pytest.approx(0.5)
    assert summary["throughput_ipc"] == 12.0
    # DRAM accesses exclude covered reads (those were satisfied on chip).
    assert summary["total_dram_accesses"] == 15
