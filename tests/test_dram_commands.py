"""Unit and property tests for the command-level DRAM model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import DDR3Timing
from repro.dram.commands import (
    CommandKind,
    CommandTimingChecker,
    CommandTrace,
    DRAMCommand,
    TimingViolation,
    expand_access,
)

TIMING = DDR3Timing()


def act(cycle, rank=0, bank=0, row=0):
    return DRAMCommand(CommandKind.ACTIVATE, cycle, rank, bank, row)


def rd(cycle, rank=0, bank=0, row=0):
    return DRAMCommand(CommandKind.READ, cycle, rank, bank, row)


def wr(cycle, rank=0, bank=0, row=0):
    return DRAMCommand(CommandKind.WRITE, cycle, rank, bank, row)


def pre(cycle, rank=0, bank=0, row=0):
    return DRAMCommand(CommandKind.PRECHARGE, cycle, rank, bank, row)


def ref(cycle, rank=0):
    return DRAMCommand(CommandKind.REFRESH, cycle, rank)


class TestActivateConstraints:
    def test_activate_then_read_at_trcd_is_legal(self):
        checker = CommandTimingChecker()
        checker.issue(act(0, row=5))
        checker.issue(rd(TIMING.tRCD, row=5))
        assert checker.open_row(0, 0) == 5

    def test_read_before_trcd_is_rejected(self):
        checker = CommandTimingChecker()
        checker.issue(act(0, row=5))
        with pytest.raises(TimingViolation) as err:
            checker.issue(rd(TIMING.tRCD - 1, row=5))
        assert err.value.constraint == "tRCD"

    def test_activate_to_open_bank_is_rejected(self):
        checker = CommandTimingChecker()
        checker.issue(act(0, row=5))
        with pytest.raises(TimingViolation):
            checker.issue(act(100, row=6))

    def test_back_to_back_activates_respect_trc(self):
        checker = CommandTimingChecker()
        checker.issue(act(0, row=1))
        checker.issue(pre(TIMING.tRAS, row=1))
        # tRP after precharge would allow tRAS + tRP, but tRC dominates only
        # if larger; DDR3-1600 has tRC = 39 = tRAS(28) + tRP(11) exactly.
        checker.issue(act(TIMING.tRC, row=2))

    def test_second_activate_before_trc_is_rejected(self):
        checker = CommandTimingChecker()
        checker.issue(act(0, row=1))
        checker.issue(pre(TIMING.tRAS, row=1))
        with pytest.raises(TimingViolation):
            checker.issue(act(TIMING.tRC - 2, row=2))

    def test_trrd_between_banks_of_same_rank(self):
        checker = CommandTimingChecker()
        checker.issue(act(0, bank=0, row=1))
        with pytest.raises(TimingViolation) as err:
            checker.issue(act(TIMING.tRRD - 1, bank=1, row=1))
        assert err.value.constraint == "tRRD"
        checker.issue(act(TIMING.tRRD, bank=1, row=1))

    def test_activates_on_different_ranks_are_independent(self):
        checker = CommandTimingChecker()
        checker.issue(act(0, rank=0, bank=0, row=1))
        # Same cycle on a different rank: no tRRD coupling.
        checker.issue(act(0, rank=1, bank=0, row=1))

    def test_tfaw_limits_four_activates_per_window(self):
        checker = CommandTimingChecker()
        for bank in range(4):
            checker.issue(act(bank * TIMING.tRRD, bank=bank, row=1))
        fifth_cycle = 4 * TIMING.tRRD
        if fifth_cycle < TIMING.tFAW:
            with pytest.raises(TimingViolation) as err:
                checker.issue(act(fifth_cycle, bank=4, row=1))
            assert err.value.constraint == "tFAW"
        checker.issue(act(TIMING.tFAW, bank=4, row=1))


class TestColumnAndPrechargeConstraints:
    def test_read_to_closed_bank_is_rejected(self):
        checker = CommandTimingChecker()
        with pytest.raises(TimingViolation):
            checker.issue(rd(10))

    def test_column_commands_respect_burst_cadence(self):
        checker = CommandTimingChecker()
        checker.issue(act(0, row=3))
        first = TIMING.tRCD
        checker.issue(rd(first, row=3))
        with pytest.raises(TimingViolation):
            checker.issue(rd(first + TIMING.burst_cycles - 1, row=3))

    def test_reads_to_different_ranks_do_not_share_column_gate(self):
        checker = CommandTimingChecker()
        checker.issue(act(0, rank=0, row=3))
        checker.issue(act(0, rank=1, row=3))
        checker.issue(rd(TIMING.tRCD, rank=0, row=3))
        checker.issue(rd(TIMING.tRCD, rank=1, row=3))

    def test_precharge_before_tras_is_rejected(self):
        checker = CommandTimingChecker()
        checker.issue(act(0, row=3))
        with pytest.raises(TimingViolation):
            checker.issue(pre(TIMING.tRAS - 1, row=3))

    def test_read_extends_precharge_constraint_by_trtp(self):
        checker = CommandTimingChecker()
        checker.issue(act(0, row=3))
        read_cycle = TIMING.tRAS  # late read
        checker.issue(rd(read_cycle, row=3))
        with pytest.raises(TimingViolation):
            checker.issue(pre(read_cycle + TIMING.tRTP - 1, row=3))
        checker.issue(pre(read_cycle + TIMING.tRTP, row=3))

    def test_write_recovery_delays_precharge(self):
        checker = CommandTimingChecker()
        checker.issue(act(0, row=3))
        write_cycle = TIMING.tRCD
        checker.issue(wr(write_cycle, row=3))
        write_end = write_cycle + TIMING.tCAS + TIMING.burst_cycles
        with pytest.raises(TimingViolation):
            checker.issue(pre(write_end + TIMING.tWR - 1, row=3))

    def test_write_to_read_turnaround_respects_twtr(self):
        checker = CommandTimingChecker()
        checker.issue(act(0, bank=0, row=3))
        checker.issue(act(TIMING.tRRD, bank=1, row=4))
        write_cycle = TIMING.tRCD + TIMING.tRRD
        checker.issue(wr(write_cycle, bank=1, row=4))
        write_end = write_cycle + TIMING.tCAS + TIMING.burst_cycles
        with pytest.raises(TimingViolation):
            checker.issue(rd(write_end + TIMING.tWTR - 1, bank=0, row=3))
        checker.issue(rd(write_end + TIMING.tWTR, bank=0, row=3))

    def test_precharge_to_idle_bank_is_noop(self):
        checker = CommandTimingChecker()
        checker.issue(pre(0))
        assert checker.open_row(0, 0) is None


class TestRefreshConstraints:
    def test_refresh_requires_all_banks_precharged(self):
        checker = CommandTimingChecker()
        checker.issue(act(0, row=3))
        with pytest.raises(TimingViolation):
            checker.issue(ref(TIMING.tRAS + TIMING.tRP))

    def test_commands_blocked_during_trfc(self):
        checker = CommandTimingChecker(tRFC=100)
        checker.issue(ref(0))
        with pytest.raises(TimingViolation) as err:
            checker.issue(act(50, row=1))
        assert err.value.constraint == "tRFC"
        checker.issue(act(100, row=1))

    def test_refresh_does_not_block_other_rank(self):
        checker = CommandTimingChecker(tRFC=100)
        checker.issue(ref(0, rank=0))
        checker.issue(act(10, rank=1, row=1))


class TestCommandTrace:
    def test_counts_and_column_accesses(self):
        trace = CommandTrace()
        trace.extend([act(0, row=1), rd(TIMING.tRCD, row=1),
                      rd(TIMING.tRCD + TIMING.burst_cycles, row=1)])
        assert len(trace) == 3
        assert trace.activations() == 1
        assert trace.column_accesses() == 2

    def test_mean_activate_interval(self):
        trace = CommandTrace()
        trace.append(act(0, bank=0, row=1))
        trace.append(act(100, bank=0, row=2))
        trace.append(act(300, bank=0, row=3))
        assert trace.mean_activate_interval() == pytest.approx(150.0)

    def test_mean_activate_interval_without_repeats_is_zero(self):
        trace = CommandTrace()
        trace.append(act(0, bank=0, row=1))
        trace.append(act(50, bank=1, row=1))
        assert trace.mean_activate_interval() == 0.0

    def test_validate_accepts_a_legal_trace(self):
        trace = CommandTrace()
        trace.extend(expand_access(row=7, rank=0, bank=0, start_cycle=0.0,
                                   is_write=False, open_row=None))
        trace.validate()

    def test_validate_rejects_an_illegal_trace(self):
        trace = CommandTrace()
        trace.append(act(0, row=1))
        trace.append(rd(1, row=1))
        with pytest.raises(TimingViolation):
            trace.validate()


class TestExpandAccess:
    def test_row_hit_is_single_column_command(self):
        commands = expand_access(row=3, rank=0, bank=0, start_cycle=10.0,
                                 is_write=False, open_row=3)
        assert [c.kind for c in commands] == [CommandKind.READ]

    def test_row_miss_is_activate_plus_column(self):
        commands = expand_access(row=3, rank=0, bank=0, start_cycle=10.0,
                                 is_write=True, open_row=None)
        assert [c.kind for c in commands] == [CommandKind.ACTIVATE, CommandKind.WRITE]
        assert commands[1].cycle - commands[0].cycle == TIMING.tRCD

    def test_row_conflict_is_precharge_activate_column(self):
        commands = expand_access(row=3, rank=0, bank=0, start_cycle=10.0,
                                 is_write=False, open_row=9)
        assert [c.kind for c in commands] == [
            CommandKind.PRECHARGE, CommandKind.ACTIVATE, CommandKind.READ
        ]
        assert commands[1].cycle - commands[0].cycle == TIMING.tRP
        assert commands[2].cycle - commands[1].cycle == TIMING.tRCD


@settings(max_examples=60, deadline=None)
@given(
    rows=st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=20),
)
def test_property_greedy_schedule_over_one_bank_is_always_legal(rows):
    """A schedule built by spacing each access at the bank's earliest legal
    cycle must always pass the checker, regardless of the row sequence."""
    checker = CommandTimingChecker()
    cycle = 0.0
    open_row = None
    last_activate = -1.0e9
    last_column = -1.0e9
    for row in rows:
        if open_row == row:
            cycle = max(cycle, last_column + TIMING.burst_cycles,
                        last_activate + TIMING.tRCD)
            checker.issue(rd(cycle, row=row))
            last_column = cycle
        else:
            if open_row is not None:
                precharge = max(cycle, last_activate + TIMING.tRAS,
                                last_column + TIMING.tRTP)
                checker.issue(pre(precharge, row=open_row))
                cycle = precharge + TIMING.tRP
            cycle = max(cycle, last_activate + TIMING.tRC)
            checker.issue(act(cycle, row=row))
            last_activate = cycle
            cycle += TIMING.tRCD
            checker.issue(rd(cycle, row=row))
            last_column = cycle
            open_row = row
    counts = checker.command_counts()
    assert counts[CommandKind.READ] == len(rows)
