"""End-to-end DRAM engine parity: flat vs object, bit-identical everywhere.

The acceptance bar for the flat DRAM engine is the same one the cache
engines meet: for every workload, every named system configuration and the
whole scenario catalog, a simulation run under ``dram_engine="flat"`` must
produce the *identical* :class:`SimulationResult` (same fingerprint over
every counter, latency accumulator and energy figure) as one run under
``dram_engine="object"``.  The engine knobs also compose: the cache x DRAM
engine matrix is asserted on a spot-check cell.
"""

import pytest

from repro.exec.campaign import result_fingerprint
from repro.scenario.catalog import get_scenario, scenario_names
from repro.scenario.runner import run_scenario
from repro.sim.config import named_configs
from repro.sim.runner import build_trace, run_trace, run_workload_streaming
from repro.workloads.catalog import workload_names

ACCESSES = 4_000
SCENARIO_SCALE = 0.004


def _run(workload, config, dram_engine, cache_engine=None):
    trace = build_trace(workload, ACCESSES)
    return run_trace(trace, config, workload_name=workload,
                     dram_engine=dram_engine, cache_engine=cache_engine)


@pytest.mark.slow
class TestWorkloadConfigMatrix:
    @pytest.mark.parametrize("workload", workload_names())
    def test_all_named_configs_bit_identical(self, workload):
        """6 workloads x 8 named configs: flat == object, bit for bit."""
        for name, config in named_configs().items():
            flat = _run(workload, config, "flat")
            obj = _run(workload, config, "object")
            assert result_fingerprint(flat) == result_fingerprint(obj), (
                f"{workload}/{name}: flat and object DRAM engines diverged")


@pytest.mark.slow
class TestScenarioCatalog:
    @pytest.mark.parametrize("scenario_name", scenario_names())
    def test_catalog_scenarios_bit_identical(self, scenario_name):
        scenario = get_scenario(scenario_name, scale=SCENARIO_SCALE)
        config = named_configs(["bump"])["bump"]
        flat = run_scenario(scenario, config, dram_engine="flat")
        obj = run_scenario(scenario, config, dram_engine="object")
        assert result_fingerprint(flat) == result_fingerprint(obj), (
            f"{scenario_name}: flat and object DRAM engines diverged")

    @pytest.mark.parametrize("scenario_name", scenario_names())
    def test_catalog_scenarios_interp_bit_identical(self, scenario_name):
        """Phased/bursty scenario streams under the vector interpreter."""
        scenario = get_scenario(scenario_name, scale=SCENARIO_SCALE)
        config = named_configs(["bump"])["bump"]
        vector = run_scenario(scenario, config, interp="vector")
        scalar = run_scenario(scenario, config, interp="scalar")
        assert result_fingerprint(vector) == result_fingerprint(scalar), (
            f"{scenario_name}: vector and scalar interpreters diverged")


class TestEngineMatrix:
    def test_cache_and_dram_engines_compose(self):
        """All four cache x DRAM engine combinations agree."""
        config = named_configs(["bump"])["bump"]
        fingerprints = {
            (cache, dram): result_fingerprint(
                _run("web_search", config, dram, cache_engine=cache))
            for cache in ("flat", "dict")
            for dram in ("flat", "object")
        }
        assert len(set(fingerprints.values())) == 1, fingerprints

    def test_engines_and_interpreters_compose(self):
        """The cache x DRAM x interpreter cube agrees on one fingerprint.

        The vector interpreter transparently falls back to scalar rows on
        the dict cache engine, so every cell must still match.
        """
        config = named_configs(["bump"])["bump"]
        trace = build_trace("web_search", ACCESSES)
        fingerprints = {
            (cache, dram, interp): result_fingerprint(
                run_trace(trace, config, workload_name="web_search",
                          dram_engine=dram, cache_engine=cache,
                          interp=interp))
            for cache in ("flat", "dict")
            for dram in ("flat", "object")
            for interp in ("vector", "scalar")
        }
        assert len(set(fingerprints.values())) == 1, fingerprints

    def test_streaming_path_threads_the_engine(self):
        config = named_configs(["base_open"])["base_open"]
        flat = run_workload_streaming("data_serving", config,
                                      num_accesses=ACCESSES, chunk_size=1024,
                                      dram_engine="flat")
        obj = run_workload_streaming("data_serving", config,
                                     num_accesses=ACCESSES, chunk_size=1024,
                                     dram_engine="object")
        assert result_fingerprint(flat) == result_fingerprint(obj)

    def test_streaming_chunk_size_invisible_under_flat_engine(self):
        """Batched DRAM intake must not leak chunk boundaries into results."""
        config = named_configs(["base_open"])["base_open"]
        results = [
            result_fingerprint(run_workload_streaming(
                "web_serving", config, num_accesses=ACCESSES,
                chunk_size=chunk, dram_engine="flat"))
            for chunk in (256, 1000, ACCESSES)
        ]
        assert len(set(results)) == 1

    def test_server_system_reports_effective_engine(self):
        from repro.sim.config import base_open
        from repro.sim.system import ServerSystem

        assert ServerSystem(base_open(), dram_engine="flat").dram_engine == "flat"
        assert ServerSystem(base_open(), dram_engine="object").dram_engine == "object"
        # Ablation-only schedulers only exist in the object engine.
        fcfs = base_open().with_overrides(scheduler="fcfs")
        assert ServerSystem(fcfs, dram_engine="flat").dram_engine == "object"
