"""Unit and property tests for the flat-array cache engine.

The flat engine must be observationally identical to the dict engine: same
hits, misses, victims, statistics and -- critically -- the same replacement
order.  The property tests drive long randomized access/fill streams through
both engines in lockstep and compare every externally visible effect,
including the per-set recency order the LRU stamps encode and the exact
victim sequence a seeded random policy produces.
"""

import random

import pytest

import repro.cache.flat as flat_module
from repro.cache.engine import ENGINE_ENV_VAR, cache_engine_name, make_cache_array
from repro.cache.flat import FlatSetAssociativeCache
from repro.cache.replacement import LRUPolicy, RandomPolicy
from repro.cache.set_assoc import SetAssociativeCache
from repro.common.params import CacheParams

PARAMS = CacheParams(size_bytes=4 * 1024, associativity=4)


def small_flat(size=4 * 1024, assoc=4, policy=None):
    return FlatSetAssociativeCache(CacheParams(size_bytes=size, associativity=assoc),
                                   policy=policy)


def lockstep_pair(size=2 * 1024, assoc=4, policy_seed=None):
    params = CacheParams(size_bytes=size, associativity=assoc)
    if policy_seed is None:
        return (SetAssociativeCache(params),
                FlatSetAssociativeCache(params))
    return (SetAssociativeCache(params, policy=RandomPolicy(seed=policy_seed)),
            FlatSetAssociativeCache(params, policy=RandomPolicy(seed=policy_seed)))


# --------------------------------------------------------------------- #
# Basic behaviour (mirrors the dict engine's unit tests)
# --------------------------------------------------------------------- #
def test_miss_fill_hit_and_dirty():
    cache = small_flat()
    assert cache.access(0x1000) is None
    assert cache.fill(0x1000) is None
    line = cache.access(0x1000)
    assert line is not None and not line.dirty
    cache.access(0x1000, is_write=True)
    assert cache.lookup(0x1000).dirty
    assert cache.stats["hits"] == 2
    assert cache.stats["misses"] == 1


def test_lru_eviction_order_matches_dict_semantics():
    cache = small_flat()
    stride = cache.num_sets * 64
    blocks = [i * stride for i in range(5)]
    for block in blocks[:4]:
        cache.fill(block)
    cache.access(blocks[0])  # promote block 0
    victim = cache.fill(blocks[4])
    assert victim is not None
    assert victim.block_address == blocks[1]
    assert cache.contains(blocks[0])


def test_prefetched_line_lifecycle_and_counters():
    cache = small_flat()
    cache.fill(0x100, prefetched=True)
    line = cache.lookup(0x100)
    assert line.prefetched and not line.used
    cache.access(0x100)
    assert cache.lookup(0x100).used
    assert cache.stats["prefetch_hits"] == 1
    stride = cache.num_sets * 64
    cache.fill(0x200, prefetched=True)
    for i in range(1, 5):
        cache.fill(0x200 + i * stride)
    assert cache.stats["unused_prefetch_evictions"] == 1


def test_invalidate_clean_and_touch_set_dirty():
    cache = small_flat()
    cache.fill(0x300, dirty=True)
    assert cache.clean(0x300) is True
    assert cache.clean(0x300) is False
    line = cache.invalidate(0x300)
    assert line is not None and not cache.contains(0x300)
    assert cache.invalidate(0x300) is None
    assert cache.touch_set_dirty(0x300) is False
    cache.fill(0x340)
    assert cache.touch_set_dirty(0x340) is True
    assert cache.lookup(0x340).dirty


def test_capacity_never_exceeded():
    cache = small_flat(size=1024, assoc=2)
    for i in range(200):
        cache.fill(i * 64)
    assert cache.resident_count() <= cache.params.num_blocks


# --------------------------------------------------------------------- #
# Lockstep property tests against the dict engine
# --------------------------------------------------------------------- #
def _random_stream(rng, operations=4_000, footprint_blocks=256):
    for _ in range(operations):
        block = rng.randrange(footprint_blocks) * 64
        yield rng.choice(("access", "fill", "write", "clean", "invalidate")), block


def _assert_same_state(dict_cache, flat_cache):
    assert dict_cache.resident_count() == flat_cache.resident_count()
    dict_lines = {line.block_address: (line.dirty, line.prefetched, line.used)
                  for line in dict_cache.iter_lines()}
    flat_lines = {line.block_address: (line.dirty, line.prefetched, line.used)
                  for line in flat_cache.iter_lines()}
    assert dict_lines == flat_lines
    assert dict_cache.stats.snapshot() == flat_cache.stats.snapshot()


def test_lru_stamps_reproduce_dict_order_under_long_streams():
    """Per-set stamp order equals the insertion-ordered dict's key order."""
    dict_cache, flat_cache = lockstep_pair()
    rng = random.Random(11)
    for op, block in _random_stream(rng):
        if op == "access" or op == "write":
            dict_line = dict_cache.access(block, is_write=op == "write")
            flat_line = flat_cache.access(block, is_write=op == "write")
            assert (dict_line is None) == (flat_line is None)
        elif op == "fill":
            dict_victim = dict_cache.fill(block, dirty=block % 128 == 0)
            flat_victim = flat_cache.fill(block, dirty=block % 128 == 0)
            assert (dict_victim is None) == (flat_victim is None)
            if dict_victim is not None:
                assert dict_victim == flat_victim
        elif op == "clean":
            assert dict_cache.clean(block) == flat_cache.clean(block)
        else:
            dict_line = dict_cache.invalidate(block)
            flat_line = flat_cache.invalidate(block)
            assert (dict_line is None) == (flat_line is None)
    _assert_same_state(dict_cache, flat_cache)
    for set_index in range(dict_cache.num_sets):
        dict_order = list(dict_cache._sets[set_index])
        assert flat_cache.recency_ordered_tags(set_index) == dict_order, (
            f"recency order diverged in set {set_index}")


def test_stamps_stay_monotonic_across_evictions():
    """Every touch/insert in a set gets a strictly larger stamp, forever."""
    cache = small_flat(size=1024, assoc=2)
    rng = random.Random(5)
    max_stamp = 0
    for _ in range(5_000):
        block = rng.randrange(64) * 64 * cache.num_sets  # all in set 0
        if cache.access(block) is None:
            cache.fill(block)
        stamp = int(cache.stamps.reshape(-1)[cache._slot_of[block]])
        assert stamp > max_stamp, "every touch/insert must get a fresh stamp"
        max_stamp = stamp
    # The set's tick counter only ever grows (it survives evictions): one
    # tick per access-hit promote plus one per fill.
    assert cache._tick[0] == max_stamp >= 5_000


def test_random_policy_is_seed_deterministic_across_engines():
    """Same seed -> identical victim sequence on both engines."""
    dict_cache, flat_cache = lockstep_pair(policy_seed=99)
    rng = random.Random(23)
    victims_dict = []
    victims_flat = []
    for _ in range(6_000):
        block = rng.randrange(512) * 64
        if rng.random() < 0.3:
            dict_cache.access(block)
            flat_cache.access(block)
        else:
            dict_victim = dict_cache.fill(block)
            flat_victim = flat_cache.fill(block)
            if dict_victim is not None:
                victims_dict.append(dict_victim.block_address)
            if flat_victim is not None:
                victims_flat.append(flat_victim.block_address)
    assert victims_dict == victims_flat
    assert len(victims_dict) > 100  # the stream actually exercised evictions
    _assert_same_state(dict_cache, flat_cache)


def test_random_policy_reproducible_between_runs():
    first = lockstep_pair(policy_seed=7)[1]
    second = lockstep_pair(policy_seed=7)[1]
    rng_a, rng_b = random.Random(1), random.Random(1)
    for _ in range(2_000):
        block_a = rng_a.randrange(256) * 64
        block_b = rng_b.randrange(256) * 64
        va = first.fill(block_a)
        vb = second.fill(block_b)
        assert (va is None) == (vb is None)
        if va is not None:
            assert va == vb


# --------------------------------------------------------------------- #
# Region scans
# --------------------------------------------------------------------- #
def region_pair():
    params = CacheParams(size_bytes=64 * 1024, associativity=8)
    dict_cache = SetAssociativeCache(params)
    flat_cache = FlatSetAssociativeCache(params)
    rng = random.Random(3)
    for _ in range(3_000):
        block = rng.randrange(4_096) * 64
        dirty = rng.random() < 0.5
        dict_cache.fill(block, dirty=dirty)
        flat_cache.fill(block, dirty=dirty)
    return dict_cache, flat_cache


def test_region_scans_match_dict_engine():
    dict_cache, flat_cache = region_pair()
    for base in range(0, 64 * 1024, 4 * 1024):
        dict_lines = [(l.block_address, l.dirty)
                      for l in dict_cache.resident_blocks_in_region(base, 4 * 1024)]
        flat_lines = [(l.block_address, l.dirty)
                      for l in flat_cache.resident_blocks_in_region(base, 4 * 1024)]
        assert dict_lines == flat_lines
        assert (dict_cache.dirty_blocks_in_region(base, 4 * 1024)
                == flat_cache.dirty_blocks_in_region(base, 4 * 1024))


def test_region_scans_match_on_vectorized_path(monkeypatch):
    """Force the NumPy gather path and compare it against the dict engine."""
    monkeypatch.setattr(flat_module, "_SCALAR_SCAN_LIMIT", 1)
    dict_cache, flat_cache = region_pair()
    for base in (0, 8 * 1024, 32 * 1024):
        dict_lines = [l.block_address
                      for l in dict_cache.resident_blocks_in_region(base, 8 * 1024)]
        flat_lines = [l.block_address
                      for l in flat_cache.resident_blocks_in_region(base, 8 * 1024)]
        assert dict_lines == flat_lines
        assert (dict_cache.dirty_blocks_in_region(base, 8 * 1024)
                == flat_cache.dirty_blocks_in_region(base, 8 * 1024))


def test_llc_demand_access_wrapper_matches_probe_plus_access():
    """The fused LLC wrapper equals the split probe+access on both engines."""
    from repro.cache.llc import LastLevelCache

    for engine in ("dict", "flat"):
        reference = LastLevelCache(PARAMS, engine=engine)
        fused = LastLevelCache(PARAMS, engine=engine)
        rng = random.Random(31)
        for _ in range(2_000):
            block = rng.randrange(256) * 64
            op = rng.random()
            if op < 0.4:
                prefetched = rng.random() < 0.5
                reference.fill(block, prefetched=prefetched)
                fused.fill(block, prefetched=prefetched)
                continue
            is_write = op < 0.7
            resident = reference.probe(block, count_traffic=False)
            covered_ref = (resident is not None and resident.prefetched
                           and not resident.used)
            hit_ref = reference.access(block, is_write) is not None
            hit, covered = fused.demand_access(block, is_write)
            assert (hit, covered) == (hit_ref, covered_ref), engine
        assert reference.stats.snapshot() == fused.stats.snapshot(), engine
        assert (reference.array_stats.snapshot()
                == fused.array_stats.snapshot()), engine


def test_flat_engine_rejects_policies_without_touch_promotes():
    """A custom policy must declare whether on_access promotes to MRU."""
    class SilentPolicy(LRUPolicy.__mro__[1]):  # ReplacementPolicy
        def on_access(self, cache_set, tag):
            return None

        def victim(self, cache_set):
            return next(iter(cache_set))

    with pytest.raises(TypeError, match="touch_promotes"):
        FlatSetAssociativeCache(PARAMS, policy=SilentPolicy())

    class DeclaredPolicy(SilentPolicy):
        touch_promotes = False

    cache = FlatSetAssociativeCache(PARAMS, policy=DeclaredPolicy())
    assert cache._promote is False
    # The dict engine accepts the same policy unchanged.
    SetAssociativeCache(PARAMS, policy=DeclaredPolicy())


# --------------------------------------------------------------------- #
# Engine selection
# --------------------------------------------------------------------- #
def test_engine_explicit_selection():
    assert isinstance(make_cache_array(PARAMS, engine="dict"), SetAssociativeCache)
    assert isinstance(make_cache_array(PARAMS, engine="flat"), FlatSetAssociativeCache)


def test_engine_env_var_selection(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV_VAR, "dict")
    assert cache_engine_name() == "dict"
    assert isinstance(make_cache_array(PARAMS), SetAssociativeCache)
    monkeypatch.setenv(ENGINE_ENV_VAR, "flat")
    assert cache_engine_name() == "flat"
    monkeypatch.delenv(ENGINE_ENV_VAR)
    assert cache_engine_name() == "flat"


def test_engine_rejects_unknown_names(monkeypatch):
    with pytest.raises(ValueError, match="unknown cache engine"):
        cache_engine_name("hashmap")
    monkeypatch.setenv(ENGINE_ENV_VAR, "typo")
    with pytest.raises(ValueError, match="unknown cache engine"):
        cache_engine_name()


def test_flat_cache_requires_power_of_two_sets():
    with pytest.raises(ValueError):
        FlatSetAssociativeCache(CacheParams(size_bytes=3 * 1024, associativity=4))
