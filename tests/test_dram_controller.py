"""Unit tests for the FR-FCFS queue, memory controller and memory system."""

import pytest

from repro.common.addressing import BLOCK_SIZE, REGION_SIZE
from repro.common.params import DDR3Timing, DRAMOrganization
from repro.common.request import DRAMRequest, DRAMRequestKind
from repro.dram.address_mapping import make_block_interleaving, make_region_interleaving
from repro.dram.controller import MemoryController, PagePolicy
from repro.dram.scheduler import FRFCFSQueue
from repro.dram.system import MemorySystem


def region_mapping():
    return make_region_interleaving(DRAMOrganization())


def make_controller(policy=PagePolicy.OPEN, window=64, mapping=None):
    org = DRAMOrganization()
    return MemoryController(0, DDR3Timing(), org,
                            mapping if mapping is not None else region_mapping(),
                            page_policy=policy, window=window)


def read_request(block, arrival=0.0, kind=DRAMRequestKind.DEMAND_READ):
    return DRAMRequest(block_address=block, kind=kind, arrival_cycle=arrival)


# --------------------------------------------------------------------- #
# FR-FCFS queue
# --------------------------------------------------------------------- #
def test_frfcfs_prefers_row_hit_within_window():
    mapping = region_mapping()
    queue = FRFCFSQueue(window=8)
    blocks = [0, REGION_SIZE * 2, BLOCK_SIZE]  # first and third share a region/row
    for block in blocks:
        queue.push(read_request(block), mapping.map(block))
    coords0 = mapping.map(blocks[0])
    open_rows = {(coords0.rank, coords0.bank): coords0.row}
    first = queue.pop_next(open_rows)
    assert first[0].block_address == 0
    second = queue.pop_next(open_rows)
    # The other request to the open row jumps ahead of the older non-hit one.
    assert second[0].block_address == BLOCK_SIZE


def test_frfcfs_falls_back_to_oldest():
    mapping = region_mapping()
    queue = FRFCFSQueue(window=8)
    for block in (0, REGION_SIZE * 2):
        queue.push(read_request(block), mapping.map(block))
    entry = queue.pop_next({})
    assert entry[0].block_address == 0


def test_frfcfs_window_bounds_reordering():
    mapping = region_mapping()
    queue = FRFCFSQueue(window=2)
    co_row_block = BLOCK_SIZE  # same row as block 0
    blocks = [REGION_SIZE * 2, REGION_SIZE * 4, co_row_block]
    for block in blocks:
        queue.push(read_request(block), mapping.map(block))
    coords = mapping.map(co_row_block)
    open_rows = {(coords.rank, coords.bank): coords.row}
    # The row-hit request sits outside the 2-entry window, so the oldest wins.
    entry = queue.pop_next(open_rows)
    assert entry[0].block_address == blocks[0]


def test_frfcfs_rejects_empty_window():
    with pytest.raises(ValueError):
        FRFCFSQueue(window=0)
    assert FRFCFSQueue(window=4).pop_next({}) is None


# --------------------------------------------------------------------- #
# Memory controller
# --------------------------------------------------------------------- #
def test_bulk_region_transfer_amortises_one_activation():
    controller = make_controller()
    base = 5 * REGION_SIZE * 2  # even region -> channel 0 under region interleaving
    blocks = [base + i * BLOCK_SIZE for i in range(16)]
    for block in blocks:
        controller.enqueue(read_request(block))
    completed = controller.drain()
    assert len(completed) == 16
    assert controller.activations == 1
    assert controller.row_hit_ratio == pytest.approx(15.0 / 16.0)


def test_scattered_accesses_activate_repeatedly():
    controller = make_controller()
    org = DRAMOrganization()
    stride = REGION_SIZE * org.channels * org.banks_per_rank * org.ranks_per_channel * 8
    blocks = [i * stride for i in range(8)]  # same bank, different rows
    for block in blocks:
        controller.enqueue(read_request(block))
    controller.drain()
    assert controller.activations == len(blocks)
    assert controller.row_hit_ratio == 0.0


def test_close_row_policy_precharges_between_isolated_accesses():
    open_controller = make_controller(PagePolicy.OPEN)
    close_controller = make_controller(PagePolicy.CLOSE)
    base = 4 * REGION_SIZE
    for controller in (open_controller, close_controller):
        controller.enqueue(read_request(base))
        controller.drain()
        controller.enqueue(read_request(base + BLOCK_SIZE, arrival=10_000.0))
        controller.drain()
    assert open_controller.row_hit_ratio == pytest.approx(0.5)
    assert close_controller.row_hit_ratio == 0.0


def test_demand_read_latency_recorded():
    controller = make_controller()
    controller.enqueue(read_request(0))
    completed = controller.drain()
    assert completed[0].latency_cycles > 0
    assert controller.average_demand_read_latency == pytest.approx(
        completed[0].latency_cycles
    )


def test_writes_counted_separately():
    controller = make_controller()
    controller.enqueue(read_request(0))
    controller.enqueue(read_request(BLOCK_SIZE, kind=DRAMRequestKind.DEMAND_WRITEBACK))
    controller.drain()
    stats = controller.stats
    assert stats["reads"] == 1
    assert stats["writes"] == 1
    assert stats["kind_demand_writeback"] == 1


def test_enqueue_drains_when_queue_saturates():
    controller = make_controller(window=4)
    for i in range(20):
        controller.enqueue(read_request(i * BLOCK_SIZE))
    # Eager draining keeps the pending queue below twice the window.
    assert len(controller.queue) < 2 * controller.queue.window
    controller.drain()
    assert controller.stats["accesses"] == 20


def test_reset_counters_preserves_bank_state():
    controller = make_controller()
    controller.enqueue(read_request(0))
    controller.drain()
    controller.reset_counters()
    assert controller.stats["accesses"] == 0
    # The row opened before the reset is still open: the next access hits.
    controller.enqueue(read_request(BLOCK_SIZE))
    controller.drain()
    assert controller.row_hit_ratio == 1.0


# --------------------------------------------------------------------- #
# Memory system
# --------------------------------------------------------------------- #
def test_memory_system_routes_to_both_channels():
    system = MemorySystem(DDR3Timing(), DRAMOrganization(), region_mapping())
    for region in range(8):
        system.enqueue(read_request(region * REGION_SIZE))
    system.drain()
    per_channel = [c.stats["accesses"] for c in system.controllers]
    assert sum(per_channel) == 8
    assert all(count > 0 for count in per_channel)


def test_memory_system_aggregates_stats():
    system = MemorySystem(DDR3Timing(), DRAMOrganization(), region_mapping())
    base = 3 * REGION_SIZE
    for i in range(16):
        system.enqueue(read_request(base + i * BLOCK_SIZE))
    system.drain()
    assert system.accesses == 16
    assert system.activations == 1
    assert system.row_hit_ratio == pytest.approx(15.0 / 16.0)
    assert system.elapsed_cycles > 0
    assert system.bus_busy_cycles == pytest.approx(16 * DDR3Timing().burst_cycles)
    kinds = system.traffic_by_kind()
    assert kinds[DRAMRequestKind.DEMAND_READ] == 16


def test_block_interleaving_distributes_a_region_across_banks():
    mapping = make_block_interleaving(DRAMOrganization())
    system = MemorySystem(DDR3Timing(), DRAMOrganization(), mapping)
    for i in range(16):
        system.enqueue(read_request(i * BLOCK_SIZE))
    system.drain()
    # Every block of the region activates its own bank: no row hits at all.
    assert system.row_hit_ratio == 0.0
    assert system.activations == 16
