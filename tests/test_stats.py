"""Unit tests for the StatGroup counter container."""

from repro.common.stats import StatGroup


def test_counters_start_at_zero():
    stats = StatGroup("test")
    assert stats["anything"] == 0.0
    assert stats.get("missing", 5.0) == 5.0


def test_inc_accumulates():
    stats = StatGroup()
    stats.inc("hits")
    stats.inc("hits", 2)
    assert stats["hits"] == 3


def test_set_overwrites():
    stats = StatGroup()
    stats.inc("x", 10)
    stats.set("x", 2)
    assert stats["x"] == 2


def test_ratio_handles_zero_denominator():
    stats = StatGroup()
    assert stats.ratio("a", "b") == 0.0
    stats.inc("a", 3)
    stats.inc("b", 6)
    assert stats.ratio("a", "b") == 0.5


def test_merge_sums_counters():
    left = StatGroup("left")
    right = StatGroup("right")
    left.inc("shared", 1)
    right.inc("shared", 2)
    right.inc("only_right", 4)
    left.merge(right)
    assert left["shared"] == 3
    assert left["only_right"] == 4
    # Merging must not mutate the source.
    assert right["shared"] == 2


def test_update_from_mapping():
    stats = StatGroup()
    stats.update({"a": 1.0, "b": 2.0})
    stats.update({"a": 1.5})
    assert stats["a"] == 2.5
    assert stats["b"] == 2.0


def test_snapshot_is_a_copy():
    stats = StatGroup()
    stats.inc("k", 1)
    snap = stats.snapshot()
    snap["k"] = 100
    assert stats["k"] == 1


def test_reset_all_and_selected():
    stats = StatGroup()
    stats.inc("a", 1)
    stats.inc("b", 2)
    stats.reset(["a"])
    assert stats["a"] == 0
    assert stats["b"] == 2
    stats.reset()
    assert stats["b"] == 0
    assert list(stats.keys()) == []


def test_selective_reset_zeroes_in_place():
    """reset(keys) must zero counters, not remove them (regression).

    The old implementation popped the listed keys, which flipped
    ``__contains__`` and ``keys()`` for counters that had been touched.
    """
    stats = StatGroup()
    stats.inc("a", 3)
    stats.inc("b", 2)
    stats.reset(["a", "never_touched"])
    assert stats["a"] == 0.0
    assert "a" in stats                      # still a touched counter
    assert list(stats.keys()) == ["a", "b"]  # zeroed in place, order kept
    assert "never_touched" not in stats      # reset never creates counters
    assert stats["b"] == 2


def test_contains_reflects_touched_counters():
    stats = StatGroup()
    assert "a" not in stats
    stats.inc("a")
    assert "a" in stats
