"""Tests for the composable scenario engine (`repro.scenario`).

The load-bearing properties: one seed fixes the whole multi-tenant trace
bit for bit, chunking cannot change it (including chunks spanning phase
boundaries), idle cores stay silent, intensity scales arrival gaps, and a
compiled scenario behaves like any other trace end to end (engine parity,
campaign store round trips, streaming entry points).
"""

import numpy as np
import pytest

from repro.exec import ScenarioGrid, run_campaign
from repro.exec.campaign import result_fingerprint
from repro.exec.jobs import JobSpec
from repro.exec.store import ArtifactStore
from repro.scenario import (
    Burst,
    Phase,
    Scenario,
    TenantAssignment,
    generate_scenario_buffer,
    get_scenario,
    iter_scenario_chunks,
    run_scenario,
    scenario_names,
)
from repro.sim.config import base_open
from repro.workloads.catalog import get_workload
from repro.sim.runner import run_trace, run_workload_streaming
from repro.sim.system import ServerSystem

#: Scales every catalog scenario down to a few thousand accesses.
SCALE = 0.003

#: Catalog scenarios the determinism/parity matrix runs over (one single
#: phase, one bursty multi-phase, one maximally heterogeneous).
MATRIX = ["tenant-colocation", "antagonist-burst", "all-six-mix"]


def small(name: str) -> Scenario:
    return get_scenario(name, scale=SCALE)


# --------------------------------------------------------------------- #
# Description validation
# --------------------------------------------------------------------- #
class TestSpecValidation:
    def test_overlapping_cores_rejected(self):
        with pytest.raises(ValueError, match="more than one tenant"):
            Phase("p", 100, [
                TenantAssignment("web_search", (0, 1)),
                TenantAssignment("data_serving", (1, 2)),
            ])

    def test_burst_window_must_be_ordered(self):
        with pytest.raises(ValueError):
            Burst(0.5, 0.5, 2.0)
        with pytest.raises(ValueError):
            Burst(-0.1, 0.5, 2.0)
        with pytest.raises(ValueError):
            Burst(0.1, 0.5, 0.0)

    def test_cores_must_fit_the_system(self):
        phase = Phase("p", 100, [TenantAssignment("web_search", (0, 16))])
        with pytest.raises(ValueError, match="outside the 16-core system"):
            Scenario(name="bad", description="", phases=[phase])

    def test_accesses_need_a_tenant(self):
        with pytest.raises(ValueError, match="no tenants"):
            Phase("p", 100, [])

    def test_unknown_scenario_name(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            get_scenario("idle-cores", scale=0.0)

    def test_workload_names_resolve(self):
        tenant = TenantAssignment("web_search", (0,))
        assert tenant.workload.name == "web_search"


# --------------------------------------------------------------------- #
# Catalog integrity
# --------------------------------------------------------------------- #
class TestCatalog:
    def test_ships_the_six_scenarios(self):
        assert scenario_names() == [
            "tenant-colocation", "diurnal-ramp", "antagonist-burst",
            "phase-change", "idle-cores", "all-six-mix",
        ]

    @pytest.mark.parametrize("name", [
        "tenant-colocation", "diurnal-ramp", "antagonist-burst",
        "phase-change", "idle-cores", "all-six-mix",
    ])
    def test_full_scale_is_measurement_sized(self, name):
        scenario = get_scenario(name)
        assert scenario.total_accesses >= 1_000_000
        assert len(scenario.describe()) == len(scenario.phases)

    def test_name_normalisation(self):
        assert get_scenario("Tenant_Colocation").name == "tenant-colocation"

    def test_scale_shrinks_phases(self):
        assert get_scenario("idle-cores", scale=0.001).total_accesses == 1_000

    def test_scale_applies_to_scenario_instances(self):
        # get_scenario must rescale a ready instance, not silently ignore
        # scale= (ScenarioGrid relies on this for custom scenarios).
        custom = Scenario(
            name="custom", description="",
            phases=[Phase("p", 10_000,
                          [TenantAssignment("web_search", (0, 1))],
                          bursts=(Burst(0.1, 0.2, 2.0),))])
        scaled = get_scenario(custom, scale=0.1)
        assert scaled.total_accesses == 1_000
        assert scaled.phases[0].bursts == custom.phases[0].bursts
        assert custom.total_accesses == 10_000  # input untouched
        assert get_scenario(custom) is custom  # scale=1.0 passes through


# --------------------------------------------------------------------- #
# Seed determinism and chunk-size invariance
# --------------------------------------------------------------------- #
class TestDeterminism:
    @pytest.mark.parametrize("name", MATRIX)
    def test_bit_identical_across_chunk_sizes(self, name):
        scenario = small(name)
        reference = generate_scenario_buffer(scenario, seed=11,
                                             chunk_size=scenario.total_accesses)
        for chunk_size in (512, 1111):
            assert generate_scenario_buffer(scenario, seed=11,
                                            chunk_size=chunk_size) == reference

    @pytest.mark.parametrize("name", MATRIX)
    def test_seed_changes_the_trace(self, name):
        scenario = small(name)
        one = generate_scenario_buffer(scenario, seed=1)
        two = generate_scenario_buffer(scenario, seed=2)
        assert not np.array_equal(one.address, two.address)

    def test_chunks_are_full_sized_except_the_last(self):
        scenario = small("antagonist-burst")
        chunks = list(iter_scenario_chunks(scenario, seed=3, chunk_size=500))
        assert [len(chunk) for chunk in chunks[:-1]] == [500] * (len(chunks) - 1)
        assert sum(len(chunk) for chunk in chunks) == scenario.total_accesses

    def test_idle_cores_stay_silent(self):
        buffer = generate_scenario_buffer(small("idle-cores"), seed=5)
        assert set(np.unique(buffer.core).tolist()) == {0, 1, 2, 3}

    def test_phase_boundary_not_multiple_of_chunk_size(self):
        # 1000 + 777 accesses, chunked at 256: the fifth chunk splices the
        # tail of phase one with the head of phase two.
        scenario = Scenario(
            name="boundary", description="",
            phases=[
                Phase("one", 1000, [TenantAssignment("web_search", (0, 1))]),
                Phase("two", 777, [TenantAssignment("data_serving", (4, 5, 6))]),
            ])
        whole = generate_scenario_buffer(scenario, seed=9, chunk_size=10_000)
        chunked = generate_scenario_buffer(scenario, seed=9, chunk_size=256)
        assert chunked == whole
        assert len(whole) == 1777
        # The boundary lands exactly at access 1000: phase one's cores before
        # it, phase two's after it.
        assert set(np.unique(whole.core[:1000]).tolist()) == {0, 1}
        assert set(np.unique(whole.core[1000:]).tolist()) == {4, 5, 6}

    def test_intensity_compresses_instruction_gaps(self):
        tenants = [TenantAssignment("web_search", (0, 1, 2, 3))]
        scenario = Scenario(
            name="ramp", description="",
            phases=[
                Phase("slow", 2000, tenants, intensity=1.0),
                Phase("fast", 2000, tenants, intensity=2.0),
            ])
        buffer = generate_scenario_buffer(scenario, seed=4)
        slow = float(buffer.instructions[:2000].mean())
        fast = float(buffer.instructions[2000:].mean())
        assert fast < 0.7 * slow

    def test_burst_window_compresses_gaps_inside_only(self):
        tenants = [TenantAssignment("web_search", (0, 1))]
        scenario = Scenario(
            name="spike", description="",
            phases=[Phase("p", 4000, tenants,
                          bursts=(Burst(0.25, 0.5, 4.0),))])
        buffer = generate_scenario_buffer(scenario, seed=4)
        inside = float(buffer.instructions[1000:2000].mean())
        outside = float(buffer.instructions[2000:].mean())
        assert inside < 0.5 * outside

    def test_override_variants_do_not_share_layouts(self):
        # Two specs named "web_search" on the same core: the layout cache
        # keys on the spec's content fingerprint, so the overridden tenant
        # must draw from its own (tiny) dataset, not the default one.
        tiny = get_workload("web_search").with_overrides(
            coarse_heap_bytes=1024 * 1024, fine_space_bytes=1024 * 1024,
            coarse_object_count=64)
        scenario = Scenario(
            name="variants", description="",
            phases=[
                Phase("default", 1000, [TenantAssignment("web_search", (0,))]),
                Phase("tiny", 1000, [TenantAssignment(tiny, (0,))]),
            ])
        buffer = generate_scenario_buffer(scenario, seed=3)
        tiny_addresses = buffer.address[1000:]
        assert int(tiny_addresses.max()) < 4 * 1024 * 1024
        assert int(buffer.address[:1000].max()) > 4 * 1024 * 1024

    def test_round_robin_interleaves_active_cores(self):
        buffer = generate_scenario_buffer(small("tenant-colocation"), seed=6)
        # All sixteen cores are active, in sorted round-robin order.
        assert buffer.core[:16].tolist() == list(range(16))


# --------------------------------------------------------------------- #
# Simulation integration: engines, chunking, entry points
# --------------------------------------------------------------------- #
class TestSimulationParity:
    @pytest.mark.parametrize("name", MATRIX)
    def test_flat_and_dict_engines_bit_identical(self, name):
        scenario = small(name)
        flat = run_scenario(scenario, base_open(), cache_engine="flat")
        legacy = run_scenario(scenario, base_open(), cache_engine="dict")
        assert result_fingerprint(flat) == result_fingerprint(legacy)

    def test_result_invariant_under_chunk_size(self):
        scenario = small("antagonist-burst")
        small_chunks = run_scenario(scenario, base_open(), chunk_size=512)
        large_chunks = run_scenario(scenario, base_open(), chunk_size=4096)
        assert result_fingerprint(small_chunks) == result_fingerprint(large_chunks)

    def test_server_system_accepts_a_scenario(self):
        scenario = small("idle-cores")
        direct = ServerSystem(base_open(), workload_name=scenario.name).run(scenario)
        streamed = run_scenario(scenario, base_open(), warmup_fraction=0.0)
        assert result_fingerprint(direct) == result_fingerprint(streamed)

    def test_run_trace_accepts_a_scenario(self):
        scenario = small("idle-cores")
        via_trace = run_trace(scenario, base_open(), workload_name=scenario.name)
        via_runner = run_scenario(scenario, base_open())
        assert result_fingerprint(via_trace) == result_fingerprint(via_runner)

    def test_streaming_run_retains_no_completed_requests(self):
        # Bounded-memory promise: the simulator's controllers must not keep
        # one request object per DRAM transfer (they fold everything into
        # scalar counters at serve time).
        scenario = small("tenant-colocation")
        system = ServerSystem(base_open(), workload_name=scenario.name)
        result = system.run(scenario)
        assert result.counters["accesses"] == scenario.total_accesses
        assert all(not controller._completed
                   for controller in system.memory.controllers)

    def test_run_workload_streaming_delegates(self):
        scenario = small("idle-cores")
        streamed = run_workload_streaming(scenario, base_open(), seed=7)
        direct = run_scenario(scenario, base_open(), seed=7)
        assert result_fingerprint(streamed) == result_fingerprint(direct)


# --------------------------------------------------------------------- #
# Campaign-engine integration
# --------------------------------------------------------------------- #
class TestScenarioGrid:
    def test_expand_uses_scenario_geometry(self):
        grid = ScenarioGrid(scenarios=["idle-cores"], configs=["base_open"],
                            scale=SCALE)
        (job,) = grid.expand()
        assert job.workload.name == "idle-cores"
        assert job.num_accesses == job.workload.total_accesses
        assert job.num_cores == 16

    def test_expand_dedups_identical_cells(self):
        grid = ScenarioGrid(scenarios=["idle-cores", "idle-cores"],
                            configs=["base_open"], scale=SCALE)
        assert len(grid.expand()) == 1

    def test_jobspec_rejects_mismatched_geometry(self):
        scenario = small("idle-cores")
        with pytest.raises(ValueError, match="disagrees"):
            JobSpec(workload=scenario, config=base_open(),
                    num_accesses=scenario.total_accesses + 1,
                    num_cores=scenario.num_cores)

    def test_campaign_resumes_from_store(self, tmp_path):
        jobs = ScenarioGrid(scenarios=["idle-cores"],
                            configs=["base_open", "bump"],
                            scale=SCALE).expand()
        store = ArtifactStore(tmp_path / "store")
        first = run_campaign(jobs, store=store)
        assert first.simulated_count == 2
        second = run_campaign(jobs, store=store)
        assert second.cached_count == 2
        for left, right in zip(first.outcomes, second.outcomes):
            assert (result_fingerprint(left.result)
                    == result_fingerprint(right.result))

    def test_store_trace_round_trip_matches_direct_run(self, tmp_path):
        # The store persists the compiled scenario as a structured .npy; a
        # run over the memory-mapped copy must equal a run over fresh chunks.
        from repro.exec import pool

        (job,) = ScenarioGrid(scenarios=["idle-cores"], configs=["base_open"],
                              scale=SCALE).expand()
        store = ArtifactStore(tmp_path / "store")
        pool.clear_trace_memo()
        generated = pool.job_trace(job, store)
        pool.clear_trace_memo()
        mapped = pool.job_trace(job, store)
        assert mapped == generated
        assert store.counters["hits"] >= 1
