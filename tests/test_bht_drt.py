"""Unit tests for the Bulk History Table and the Dirty Region Table."""

import pytest

from repro.core.bht import BulkHistoryTable
from repro.core.config import BuMPConfig
from repro.core.drt import DirtyRegionTable


# --------------------------------------------------------------------- #
# BHT
# --------------------------------------------------------------------- #
def test_bht_predicts_only_trained_tuples():
    bht = BulkHistoryTable()
    assert bht.predict(0x400, 2) is False
    bht.train(0x400, 2)
    assert bht.predict(0x400, 2) is True
    assert bht.predict(0x400, 3) is False
    assert bht.predict(0x404, 2) is False


def test_bht_offset_is_part_of_the_key():
    """Section IV.B: the PC is augmented with the region offset to tolerate
    misaligned software objects."""
    bht = BulkHistoryTable()
    bht.train(0x500, 0)
    bht.train(0x500, 7)
    assert bht.predict(0x500, 0) and bht.predict(0x500, 7)
    assert not bht.predict(0x500, 1)


def test_bht_training_is_idempotent_and_counted():
    bht = BulkHistoryTable()
    bht.train(0x1, 1)
    bht.train(0x1, 1)
    entry = bht.entry_for(0x1, 1)
    assert entry.trainings == 2
    assert bht.stats["trainings"] == 2


def test_bht_hit_ratio_and_trigger_counts():
    bht = BulkHistoryTable()
    bht.train(0x2, 0)
    bht.predict(0x2, 0)
    bht.predict(0x3, 0)
    assert bht.hit_ratio == pytest.approx(0.5)
    assert bht.entry_for(0x2, 0).triggers == 1


def test_bht_capacity_bounded():
    config = BuMPConfig(bht_entries=32, associativity=16)
    bht = BulkHistoryTable(config)
    for pc in range(100):
        bht.train(pc, 0)
    assert len(bht.table) <= 32


def test_bht_storage_close_to_paper_figure():
    # Section IV.D: 1024 entries cost about 4.5KB.
    assert BulkHistoryTable().storage_bits() / 8 / 1024 == pytest.approx(4.5, abs=1.0)


# --------------------------------------------------------------------- #
# DRT
# --------------------------------------------------------------------- #
def test_drt_probe_consumes_entry():
    drt = DirtyRegionTable()
    drt.insert(123)
    assert drt.contains(123)
    assert drt.probe_and_invalidate(123) is True
    assert drt.probe_and_invalidate(123) is False
    assert not drt.contains(123)


def test_drt_miss_probe():
    drt = DirtyRegionTable()
    assert drt.probe_and_invalidate(999) is False
    assert drt.hit_ratio == 0.0


def test_drt_invalidate_is_idempotent():
    drt = DirtyRegionTable()
    drt.insert(5)
    drt.invalidate(5)
    drt.invalidate(5)
    assert len(drt) == 0


def test_drt_capacity_bounded_with_conflicts_counted():
    config = BuMPConfig(drt_entries=32, associativity=16)
    drt = DirtyRegionTable(config)
    for region in range(100):
        drt.insert(region)
    assert len(drt) <= 32
    assert drt.stats["conflict_evictions"] >= 68


def test_drt_storage_close_to_paper_figure():
    # Section IV.D: 1024 entries cost about 4.25KB.
    assert DirtyRegionTable().storage_bits() / 8 / 1024 == pytest.approx(4.25, abs=1.0)
