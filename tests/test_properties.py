"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.addressing import (
    BLOCK_SIZE,
    REGION_SIZE,
    block_address,
    block_index_in_region,
    block_offset,
    region_address,
    region_base,
)
from repro.common.assoc_table import AssociativeTable
from repro.common.params import CacheParams, DRAMOrganization
from repro.common.stats import StatGroup
from repro.cache.set_assoc import SetAssociativeCache
from repro.dram.address_mapping import make_block_interleaving, make_region_interleaving
from repro.energy.dram_energy import DRAMEnergyModel

addresses = st.integers(min_value=0, max_value=2**40 - 1)
block_addresses = st.builds(lambda a: a * BLOCK_SIZE, st.integers(0, 2**30))


# --------------------------------------------------------------------- #
# Addressing
# --------------------------------------------------------------------- #
@given(addresses)
def test_block_decomposition_roundtrip(addr):
    assert block_address(addr) + block_offset(addr) == addr
    assert block_address(addr) % BLOCK_SIZE == 0


@given(addresses)
def test_region_relationships(addr):
    assert region_base(addr) <= addr < region_base(addr) + REGION_SIZE
    assert region_address(addr) == region_base(addr) // REGION_SIZE
    assert 0 <= block_index_in_region(addr) < REGION_SIZE // BLOCK_SIZE


@given(block_addresses)
def test_address_mappings_are_consistent_and_bounded(block):
    org = DRAMOrganization()
    for mapping in (make_block_interleaving(org), make_region_interleaving(org)):
        coords = mapping.map(block)
        assert 0 <= coords.channel < org.channels
        assert 0 <= coords.rank < org.ranks_per_channel
        assert 0 <= coords.bank < org.banks_per_rank
        assert 0 <= coords.column < org.row_buffer_bytes // BLOCK_SIZE
        # Mapping the same block twice gives the same coordinates.
        assert mapping.map(block) == coords


@given(block_addresses)
def test_region_interleaving_keeps_regions_together(block):
    mapping = make_region_interleaving(DRAMOrganization())
    base = region_base(block)
    first = mapping.map(base)
    other = mapping.map(block_address(block))
    assert (first.channel, first.rank, first.bank, first.row) == (
        other.channel, other.rank, other.bank, other.row
    )


# --------------------------------------------------------------------- #
# Associative table
# --------------------------------------------------------------------- #
@given(st.lists(st.tuples(st.integers(0, 500), st.integers()), max_size=300),
       st.sampled_from([(16, 4), (32, 8), (64, 16)]))
@settings(max_examples=50, deadline=None)
def test_assoc_table_never_exceeds_capacity_and_finds_latest_value(operations, geometry):
    entries, assoc = geometry
    table = AssociativeTable(entries, assoc)
    latest = {}
    for key, value in operations:
        table.insert(key, value)
        latest[key] = value
    assert len(table) <= entries
    # Any key still resident must hold the most recently inserted value.
    for key, value in iter(table):
        assert latest[key] == value


# --------------------------------------------------------------------- #
# Set-associative cache
# --------------------------------------------------------------------- #
@given(st.lists(st.tuples(st.integers(0, 2000), st.booleans()), max_size=400))
@settings(max_examples=50, deadline=None)
def test_cache_dirty_data_is_never_silently_dropped(operations):
    """Every dirty block is either still resident or was reported dirty on eviction."""
    cache = SetAssociativeCache(CacheParams(size_bytes=4 * 1024, associativity=4))
    dirty = set()
    for block_number, is_write in operations:
        block = block_number * BLOCK_SIZE
        line = cache.access(block, is_write=is_write)
        if line is None:
            victim = cache.fill(block, dirty=is_write)
            if victim is not None and victim.dirty:
                dirty.discard(victim.block_address)
        if is_write:
            dirty.add(block)
    for block in dirty:
        line = cache.lookup(block)
        assert line is not None and line.dirty
    assert cache.resident_count() <= cache.params.num_blocks


@given(st.lists(st.integers(0, 300), min_size=1, max_size=300))
@settings(max_examples=50, deadline=None)
def test_cache_hits_plus_misses_equals_accesses(blocks):
    cache = SetAssociativeCache(CacheParams(size_bytes=2 * 1024, associativity=2))
    for block_number in blocks:
        block = block_number * BLOCK_SIZE
        if cache.access(block) is None:
            cache.fill(block)
    assert cache.stats["hits"] + cache.stats["misses"] == len(blocks)


# --------------------------------------------------------------------- #
# Stats and energy
# --------------------------------------------------------------------- #
@given(st.dictionaries(st.text(min_size=1, max_size=8), st.floats(-1e6, 1e6),
                       max_size=20),
       st.dictionaries(st.text(min_size=1, max_size=8), st.floats(-1e6, 1e6),
                       max_size=20))
def test_statgroup_merge_is_additive(left_values, right_values):
    left = StatGroup()
    right = StatGroup()
    left.update(left_values)
    right.update(right_values)
    merged = StatGroup()
    merged.merge(left)
    merged.merge(right)
    for key in set(left_values) | set(right_values):
        expected = left_values.get(key, 0.0) + right_values.get(key, 0.0)
        assert abs(merged[key] - expected) < 1e-6


@given(st.integers(0, 10_000), st.integers(0, 10_000), st.integers(0, 10_000),
       st.integers(1, 10_000))
def test_dram_energy_is_monotone_in_every_command_count(activations, reads, writes, useful):
    model = DRAMEnergyModel()
    base = model.energy_per_access_nj(activations, reads, writes, useful)
    more_activations = model.energy_per_access_nj(activations + 1, reads, writes, useful)
    more_reads = model.energy_per_access_nj(activations, reads + 1, writes, useful)
    assert more_activations.total_nj >= base.total_nj
    assert more_reads.total_nj >= base.total_nj
    assert base.total_nj >= 0.0
