"""Guards for the simulation-core overhaul.

* The FR-FCFS queue's incremental ready-tracking fast path must make exactly
  the same scheduling decisions as the reference window scan (property test
  at the queue level, then end-to-end at the controller level).
* ``ServerSystem.run`` must begin measurement when the trace length equals
  the warmup interval and raise only when the trace is strictly shorter.
"""

import random

import pytest

from repro.common.params import DDR3Timing, DRAMOrganization
from repro.common.request import DRAMRequest, DRAMRequestKind
from repro.dram.address_mapping import DRAMCoordinates, make_region_interleaving
from repro.dram.controller import MemoryController, PagePolicy
from repro.dram.scheduler import FRFCFSQueue, row_state_key
from repro.sim.config import base_open
from repro.sim.runner import build_trace
from repro.sim.system import ServerSystem

KINDS = list(DRAMRequestKind)


def _random_request(rng, index):
    return DRAMRequest(block_address=index * 64, kind=rng.choice(KINDS),
                       core=rng.randrange(4), arrival_cycle=float(index))


def _random_coords(rng):
    return DRAMCoordinates(channel=0, rank=rng.randrange(2),
                           bank=rng.randrange(4), row=rng.randrange(8),
                           column=0)


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_fast_queue_matches_reference_scan(seed):
    """Tracked ready-state pops == window-scan pops for random streams."""
    rng = random.Random(seed)
    window = 8
    fast = FRFCFSQueue(window=window)
    reference = FRFCFSQueue(window=window)
    open_keys = set()
    open_rows = {}          # (rank, bank) -> row, for the reference scan
    key_of_bank = {}
    fast.track_open_rows(open_keys)

    for step in range(3_000):
        if rng.random() < 0.6 or len(fast) == 0:
            request = _random_request(rng, step)
            coords = _random_coords(rng)
            fast.push(request, coords)
            reference.push(request, coords)
        else:
            popped_fast = fast.pop_next(open_keys)
            popped_reference = reference.pop_next(open_rows)
            assert popped_fast[0] is popped_reference[0], (
                f"scheduling diverged at step {step}")
            # Mimic the controller: the served bank now holds the served row
            # (open-row policy), occasionally a random bank precharges.
            coords = popped_fast[1]
            bank = (coords.rank, coords.bank)
            old_key = key_of_bank.get(bank)
            new_key = row_state_key(coords.rank, coords.bank, coords.row)
            if new_key != old_key:
                if old_key is not None:
                    open_keys.discard(old_key)
                    fast.note_row_closed(old_key)
                open_keys.add(new_key)
                fast.note_row_opened(new_key)
                key_of_bank[bank] = new_key
            open_rows[bank] = coords.row
            if rng.random() < 0.2 and key_of_bank:
                victim_bank = rng.choice(list(key_of_bank))
                victim_key = key_of_bank.pop(victim_bank)
                if victim_key is not None:
                    open_keys.discard(victim_key)
                    fast.note_row_closed(victim_key)
                open_rows.pop(victim_bank, None)

    # Drain both completely; order must stay identical.
    while len(fast):
        assert fast.pop_next(open_keys)[0] is reference.pop_next(open_rows)[0]


@pytest.mark.parametrize("page_policy", [PagePolicy.OPEN, PagePolicy.CLOSE])
def test_controller_fast_scheduler_is_result_identical(page_policy):
    """End-to-end: fast and scan controllers serve identical schedules."""
    timing = DDR3Timing()
    org = DRAMOrganization()
    mapping = make_region_interleaving(org, org.row_buffer_bytes)
    fast = MemoryController(0, timing, org, mapping, page_policy, window=16,
                            fast_scheduler=True)
    scan = MemoryController(0, timing, org, mapping, page_policy, window=16,
                            fast_scheduler=False)
    rng = random.Random(13)
    kinds = list(DRAMRequestKind)
    for i in range(4_000):
        block = (rng.randrange(1 << 18)) * 64
        kind = rng.choice(kinds)
        arrival = float(i)
        fast.enqueue(DRAMRequest(block_address=block, kind=kind,
                                 arrival_cycle=arrival))
        scan.enqueue(DRAMRequest(block_address=block, kind=kind,
                                 arrival_cycle=arrival))
    completed_fast = fast.drain()
    completed_scan = scan.drain()
    assert [r.block_address for r in completed_fast] == \
        [r.block_address for r in completed_scan]
    assert [r.latency_cycles for r in completed_fast] == \
        [r.latency_cycles for r in completed_scan]
    assert fast.stats.snapshot() == scan.stats.snapshot()


def test_engines_bit_identical_with_non_power_of_two_cores():
    """Cycle accumulation must round identically for any core count.

    Regression: folding ``instructions * cpi / cores`` into one precomputed
    factor rounds differently when ``cores`` is not a power of two, which
    shifted DRAM arrival cycles and broke engine parity.
    """
    from repro.common.params import SystemParams
    from repro.exec.campaign import result_fingerprint
    from repro.sim.runner import run_trace

    config = base_open(system=SystemParams().scaled(num_cores=12))
    trace = build_trace("web_search", 3_000, num_cores=12, seed=5)
    flat = run_trace(trace, config, warmup_fraction=0.4, cache_engine="flat")
    dict_engine = run_trace(trace, config, warmup_fraction=0.4,
                            cache_engine="dict")
    assert result_fingerprint(flat) == result_fingerprint(dict_engine)


# --------------------------------------------------------------------- #
# Warmup boundary
# --------------------------------------------------------------------- #
def _trace(n):
    return build_trace("web_search", n, num_cores=4, seed=3)


def test_warmup_equal_to_trace_length_begins_measurement():
    """A trace exactly as long as the warmup measures zero accesses, no error."""
    system = ServerSystem(base_open())
    result = system.run(_trace(1_000), warmup_accesses=1_000)
    assert result.counters["accesses"] == 0


def test_warmup_longer_than_trace_raises():
    system = ServerSystem(base_open())
    with pytest.raises(ValueError, match="shorter than the requested warmup"):
        system.run(_trace(999), warmup_accesses=1_000)


def test_warmup_shorter_than_trace_measures_the_tail():
    system = ServerSystem(base_open())
    result = system.run(_trace(1_000), warmup_accesses=600)
    assert result.counters["accesses"] == 400
