"""The ``TraceSource`` protocol layer: adapters, ingest and feedback records.

The refactor guarantee under test: every trace shape the simulator accepted
before the protocol existed (buffers, chunk iterators, boxed access lists)
flows through :class:`~repro.trace.source.IteratorSource` bit-identically,
and an externally stored trace file round-trips through
:class:`~repro.trace.source.IngestSource` bit-for-bit -- including the
capture -> export -> ingest path out of the LLC recorder.
"""

import pytest

from repro.common.request import Access, AccessType
from repro.sim.config import base_open
from repro.sim.runner import build_trace, run_trace
from repro.trace import (
    FeedbackSample,
    IngestSource,
    IteratorSource,
    LLCTraceRecorder,
    TraceBuffer,
    TraceSource,
    as_trace_source,
    resume_source,
    save_trace,
)
from repro.workloads.catalog import get_workload
from repro.workloads.generator import generate_trace_buffer


def small_buffer(accesses=3000, seed=7):
    return generate_trace_buffer(get_workload("web_search"), accesses,
                                 num_cores=4, seed=seed)


def drain(source):
    chunks = []
    while True:
        chunk = source.next_chunk(None)
        if chunk is None:
            return chunks
        chunks.append(chunk)


class TestIteratorSource:
    def test_buffer_is_replayed_bit_identically(self):
        buffer = small_buffer()
        source = IteratorSource(buffer, chunk_size=512)
        replayed = TraceBuffer.concat(drain(source))
        assert replayed == buffer

    def test_chunk_iterator_input_is_passed_through(self):
        buffer = small_buffer()
        chunks = [buffer[i:i + 700] for i in range(0, len(buffer), 700)]
        source = IteratorSource(iter(chunks), chunk_size=256)
        assert TraceBuffer.concat(drain(source)) == buffer

    def test_boxed_access_list_input(self):
        accesses = [Access(core=0, pc=0x40, address=i * 64,
                           type=AccessType.LOAD, instructions=1)
                    for i in range(100)]
        source = IteratorSource(accesses, chunk_size=32)
        chunks = drain(source)
        assert sum(len(c) for c in chunks) == 100
        assert all(len(c) <= 32 for c in chunks)

    def test_exhaustion_is_sticky_and_feedback_free(self):
        source = IteratorSource(small_buffer(200), chunk_size=128)
        assert not source.wants_feedback
        drain(source)
        assert source.next_chunk(None) is None
        assert source.next_chunk(None) is None

    def test_iter_protocol_matches_next_chunk(self):
        buffer = small_buffer(1000)
        via_iter = TraceBuffer.concat(list(IteratorSource(buffer, 300)))
        via_pull = TraceBuffer.concat(drain(IteratorSource(buffer, 300)))
        assert via_iter == via_pull == buffer


class TestAsTraceSource:
    def test_wraps_plain_traces(self):
        source = as_trace_source(small_buffer(500), chunk_size=200)
        assert isinstance(source, IteratorSource)
        assert isinstance(source, TraceSource)

    def test_passes_existing_sources_through(self):
        source = IteratorSource(small_buffer(500))
        assert as_trace_source(source) is source


class TestIngestSource:
    @pytest.mark.parametrize("suffix,mmap", [
        (".npz", False), (".npy", False), (".npy", True), (".csv", False)])
    def test_round_trips_every_codec_bit_for_bit(self, tmp_path, suffix, mmap):
        buffer = small_buffer(1500)
        path = tmp_path / f"trace{suffix}"
        save_trace(buffer, path)
        source = IngestSource(path, chunk_size=444, mmap=mmap)
        assert source.total_accesses == len(buffer)
        assert TraceBuffer.concat(drain(source)) == buffer

    def test_recorder_export_replays_through_ingest(self, tmp_path):
        """The full capture -> codec -> replay path, end to end."""
        trace = build_trace("web_serving", 4_000, seed=5)
        recorder = LLCTraceRecorder()
        run_trace(trace, base_open(), warmup_fraction=0.0,
                  extra_agents=[recorder])
        path = recorder.export(tmp_path / "misses.npy")
        source = IngestSource(path, chunk_size=512)
        replayed = TraceBuffer.concat(drain(source))
        assert replayed == recorder.miss_trace_buffer()
        result = run_trace(IngestSource(path), base_open(),
                           warmup_fraction=0.0,
                           num_accesses=source.total_accesses)
        assert result.total_dram_accesses > 0

    def test_chunk_size_does_not_change_the_stream(self, tmp_path):
        buffer = small_buffer(2000)
        path = tmp_path / "trace.npz"
        save_trace(buffer, path)
        narrow = TraceBuffer.concat(drain(IngestSource(path, chunk_size=97)))
        wide = TraceBuffer.concat(drain(IngestSource(path, chunk_size=1900)))
        assert narrow == wide == buffer


class TestResumeSource:
    def test_leftover_is_emitted_first_then_delegates(self):
        buffer = small_buffer(900)
        leftover, rest = buffer[:123], buffer[123:]
        source = resume_source(leftover, IteratorSource(rest, chunk_size=400))
        chunks = drain(source)
        assert len(chunks[0]) == 123
        assert TraceBuffer.concat(chunks) == buffer

    def test_empty_leftover_returns_the_source_unwrapped(self):
        inner = IteratorSource(small_buffer(100))
        assert resume_source(None, inner) is inner
        assert resume_source(small_buffer(100)[:0], inner) is inner

    def test_feedback_appetite_is_preserved(self):
        class Hungry:
            wants_feedback = True

            def next_chunk(self, feedback):
                return None

        resumed = resume_source(small_buffer(10), Hungry())
        assert resumed.wants_feedback


class TestFeedbackSample:
    def test_mean_read_latency(self):
        sample = FeedbackSample(accesses=100, core_cycle=400.0,
                                demand_reads=20, read_latency_cycles=900.0,
                                queue_depth=3, llc_misses=25)
        assert sample.mean_read_latency == pytest.approx(45.0)

    def test_mean_read_latency_before_any_read_is_zero(self):
        sample = FeedbackSample(accesses=0, core_cycle=0.0, demand_reads=0,
                                read_latency_cycles=0.0, queue_depth=0,
                                llc_misses=0)
        assert sample.mean_read_latency == 0.0
