"""Round-trip equivalence of the columnar trace pipeline.

Covers the tentpole refactor's data-shape conversions: boxed object traces
<-> :class:`TraceBuffer` columns <-> on-disk ``.npz``/``.npy`` artifacts, the
chunk-size invariance of the streaming generator, and the artifact store's
columnar trace format.
"""

import numpy as np
import pytest

from repro.common.request import Access, AccessType
from repro.exec.store import ArtifactStore
from repro.trace.buffer import (
    DEFAULT_CHUNK_SIZE,
    TRACE_FIELDS,
    TraceBuffer,
    as_chunk_iterator,
)
from repro.trace.io import load_trace, load_trace_buffer, save_trace
from repro.workloads.catalog import get_workload, workload_names
from repro.workloads.generator import (
    generate_trace,
    generate_trace_buffer,
    iter_trace_chunks,
    iterate_trace,
)


def _sample_accesses():
    return [
        Access(core=0, pc=0x400010, address=0x1234_5678, type=AccessType.LOAD,
               instructions=3),
        Access(core=5, pc=0x500020, address=0xdead_bee8, type=AccessType.STORE,
               instructions=12),
        Access(core=15, pc=0x600030, address=0, type=AccessType.LOAD,
               instructions=1),
    ]


# --------------------------------------------------------------------- #
# Object <-> buffer round trips
# --------------------------------------------------------------------- #
def test_accesses_round_trip_through_buffer():
    accesses = _sample_accesses()
    buffer = TraceBuffer.from_accesses(accesses)
    assert len(buffer) == len(accesses)
    assert buffer.to_accesses() == accesses
    assert buffer == accesses  # element-wise equality against boxed lists
    assert list(buffer) == accesses  # iteration boxes identical records


def test_buffer_indexing_and_views():
    buffer = TraceBuffer.from_accesses(_sample_accesses())
    assert buffer[1].pc == 0x500020
    assert buffer[1].is_store
    view = buffer[1:]
    assert isinstance(view, TraceBuffer)
    assert len(view) == 2
    # Slices are zero-copy views over the same column memory.
    assert view.address.base is not None
    assert view.to_accesses() == _sample_accesses()[1:]


def test_empty_buffer_behaviour():
    empty = TraceBuffer.empty()
    assert len(empty) == 0
    assert empty.to_accesses() == []
    assert empty.store_fraction == 0.0
    assert TraceBuffer.concat([]) == empty


def test_concat_matches_list_concatenation():
    accesses = _sample_accesses()
    first = TraceBuffer.from_accesses(accesses[:1])
    rest = TraceBuffer.from_accesses(accesses[1:])
    assert TraceBuffer.concat([first, rest]) == accesses


def test_mismatched_column_lengths_rejected():
    with pytest.raises(ValueError):
        TraceBuffer(np.zeros(2, dtype=np.int32), np.zeros(3, dtype=np.uint64),
                    np.zeros(2, dtype=np.uint64), np.zeros(2, dtype=bool),
                    np.ones(2, dtype=np.int32))


def test_from_structured_rejects_wrong_schema():
    records = np.zeros(2, dtype=[("core", np.int32), ("pc", np.uint64)])
    with pytest.raises(ValueError):
        TraceBuffer.from_structured(records)


def test_structured_round_trip():
    buffer = TraceBuffer.from_accesses(_sample_accesses())
    assert TraceBuffer.from_structured(buffer.to_structured()) == buffer


# --------------------------------------------------------------------- #
# Buffer <-> disk round trips
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("suffix", [".csv", ".npz", ".npy"])
def test_buffer_round_trips_through_every_format(tmp_path, suffix):
    buffer = generate_trace_buffer(get_workload("web_search"), 1500,
                                   num_cores=4, seed=11)
    path = save_trace(buffer, tmp_path / f"trace{suffix}")
    assert load_trace_buffer(path) == buffer
    # The boxed compatibility loader sees the same records.
    assert load_trace(path) == buffer.to_accesses()


def test_npy_round_trip_supports_memory_mapping(tmp_path):
    buffer = TraceBuffer.from_accesses(_sample_accesses())
    path = save_trace(buffer, tmp_path / "trace.npy")
    mapped = load_trace_buffer(path, mmap=True)
    assert mapped == buffer
    # Memory-mapped columns are views into the file, not copies.
    assert isinstance(mapped.core.base, np.memmap) or isinstance(
        mapped.core, np.memmap)


def test_object_trace_saves_through_buffer_codec(tmp_path):
    accesses = _sample_accesses()
    for suffix in (".npz", ".npy"):
        path = save_trace(accesses, tmp_path / f"obj{suffix}")
        assert load_trace_buffer(path) == accesses


# --------------------------------------------------------------------- #
# Generator chunk invariance
# --------------------------------------------------------------------- #
def test_chunked_generation_is_chunk_size_invariant():
    spec = get_workload("online_analytics")
    whole = generate_trace_buffer(spec, 5000, num_cores=4, seed=9)
    for chunk_size in (1, 7, 512, 5000, DEFAULT_CHUNK_SIZE):
        chunks = list(iter_trace_chunks(spec, 5000, num_cores=4, seed=9,
                                        chunk_size=chunk_size))
        assert sum(len(c) for c in chunks) == 5000
        assert TraceBuffer.concat(chunks) == whole


def test_generate_trace_shim_matches_buffer_engine():
    spec = get_workload("media_streaming")
    buffer = generate_trace_buffer(spec, 800, num_cores=2, seed=3)
    assert generate_trace(spec, 800, num_cores=2, seed=3) == buffer.to_accesses()
    assert list(iterate_trace(spec, 800, num_cores=2, seed=3)) == buffer.to_accesses()


@pytest.mark.parametrize("workload", workload_names())
def test_every_workload_round_trips_object_buffer_npz(tmp_path, workload):
    """Object trace <-> TraceBuffer <-> .npz identity for all six workloads."""
    buffer = generate_trace_buffer(get_workload(workload), 600, num_cores=4, seed=42)
    boxed = buffer.to_accesses()
    assert TraceBuffer.from_accesses(boxed) == buffer
    path = save_trace(buffer, tmp_path / f"{workload}.npz")
    assert load_trace_buffer(path) == buffer
    assert load_trace(path) == boxed


# --------------------------------------------------------------------- #
# Chunk normalisation
# --------------------------------------------------------------------- #
def test_as_chunk_iterator_accepts_every_trace_shape():
    buffer = generate_trace_buffer(get_workload("web_search"), 300, num_cores=2, seed=1)
    boxed = buffer.to_accesses()
    shapes = [
        buffer,
        boxed,
        iter(boxed),
        buffer.iter_chunks(64),
        list(buffer.iter_chunks(64)),
    ]
    for shape in shapes:
        assert TraceBuffer.concat(list(as_chunk_iterator(shape, chunk_size=50))) == buffer
    assert list(as_chunk_iterator([])) == []


# --------------------------------------------------------------------- #
# Artifact store columnar format
# --------------------------------------------------------------------- #
def test_store_trace_round_trip_is_columnar_and_mmapped(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    buffer = generate_trace_buffer(get_workload("web_serving"), 700, num_cores=4, seed=2)
    path = store.put_trace("a" * 32, buffer)
    assert path.suffix == ".npy"
    loaded = store.get_trace("a" * 32)
    assert isinstance(loaded, TraceBuffer)
    assert loaded == buffer


def test_store_rejects_torn_trace_artifact(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    buffer = TraceBuffer.from_accesses(_sample_accesses())
    path = store.put_trace("b" * 32, buffer)
    path.write_bytes(path.read_bytes()[:16])
    assert store.get_trace("b" * 32) is None
    assert store.counters["corrupt"] == 1
    assert not path.exists()


def test_store_rejects_foreign_schema_trace(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    path = store._path("traces", "c" * 32)
    np.save(path, np.zeros(4, dtype=[("x", np.int32)]), allow_pickle=False)
    assert store.get_trace("c" * 32) is None
    assert store.counters["corrupt"] == 1


def test_buffer_fields_constant():
    # The on-disk schema is frozen; changing it requires a store format bump.
    assert TRACE_FIELDS == ("core", "pc", "address", "is_store", "instructions")
