"""Unit tests for the L1 filter and the shared LLC."""

import pytest

from repro.cache.l1 import L1DataCache
from repro.cache.llc import LastLevelCache
from repro.common.params import CacheParams


def make_l1(core=0):
    return L1DataCache(CacheParams(size_bytes=4 * 1024, associativity=2), core)


def make_llc(size=64 * 1024, assoc=4):
    return LastLevelCache(CacheParams(size_bytes=size, associativity=assoc))


# --------------------------------------------------------------------- #
# L1
# --------------------------------------------------------------------- #
def test_l1_miss_then_hit_same_block():
    l1 = make_l1()
    first = l1.access(0x1234, is_store=False)
    assert not first.hit
    second = l1.access(0x1238, is_store=False)  # same 64B block
    assert second.hit


def test_l1_store_marks_block_dirty():
    l1 = make_l1()
    l1.access(0x40, is_store=True)
    assert l1.lookup_dirty(0x40)
    assert not l1.lookup_dirty(0x80)


def test_l1_dirty_eviction_produces_writeback():
    l1 = make_l1()
    num_sets = 4 * 1024 // (2 * 64)
    stride = num_sets * 64
    l1.access(0, is_store=True)
    l1.access(stride, is_store=False)
    result = l1.access(2 * stride, is_store=False)
    assert len(result.writebacks) == 1
    assert result.writebacks[0].block_address == 0
    assert result.writebacks[0].dirty


def test_l1_clean_eviction_produces_no_writeback():
    l1 = make_l1()
    num_sets = 4 * 1024 // (2 * 64)
    stride = num_sets * 64
    for i in range(3):
        result = l1.access(i * stride, is_store=False)
        assert result.writebacks == []


def test_l1_invalidate():
    l1 = make_l1()
    l1.access(0x100, is_store=False)
    assert l1.contains(0x100)
    l1.invalidate(0x100)
    assert not l1.contains(0x100)


# --------------------------------------------------------------------- #
# LLC
# --------------------------------------------------------------------- #
def test_llc_demand_miss_hit_cycle():
    llc = make_llc()
    assert llc.access(0x1000, is_write=False) is None
    llc.fill(0x1000)
    assert llc.access(0x1000, is_write=False) is not None
    assert llc.stats["demand_misses"] == 1
    assert llc.stats["demand_hits"] == 1
    assert llc.demand_hit_ratio == pytest.approx(0.5)


def test_llc_write_hit_dirties_block():
    llc = make_llc()
    llc.fill(0x40)
    llc.access(0x40, is_write=True)
    assert llc.probe(0x40).dirty


def test_llc_write_from_l1_allocates_dirty_when_absent():
    llc = make_llc()
    victim = llc.write_from_l1(0x80)
    assert victim is None
    assert llc.probe(0x80).dirty


def test_llc_write_from_l1_marks_existing_block_dirty():
    llc = make_llc()
    llc.fill(0x80)
    llc.write_from_l1(0x80)
    assert llc.probe(0x80).dirty


def test_llc_overfetch_accounting():
    llc = make_llc(size=1024, assoc=2)
    stride = llc.params.num_sets * 64
    llc.fill(0, prefetched=True)
    for i in range(1, 4):
        llc.fill(i * stride)
    assert llc.stats["overfetched_blocks"] == 1


def test_llc_clean_counts_only_dirty_blocks():
    llc = make_llc()
    llc.fill(0x100, dirty=True)
    llc.fill(0x140, dirty=False)
    assert llc.clean(0x100) is True
    assert llc.clean(0x140) is False
    assert llc.clean(0x999999) is False
    assert llc.stats["eager_cleaned_blocks"] == 1


def test_llc_dirty_blocks_in_region():
    llc = make_llc()
    base = 2048
    llc.fill(base, dirty=True)
    llc.fill(base + 64, dirty=False)
    llc.fill(base + 128, dirty=True)
    assert set(llc.dirty_blocks_in_region(base, 1024)) == {base, base + 128}


def test_llc_traffic_ops_counts_probes_and_fills():
    llc = make_llc()
    llc.access(0, is_write=False)
    llc.fill(0)
    llc.probe(0)
    llc.clean(0)
    assert llc.stats["traffic_ops"] == 4
    llc.probe(0, count_traffic=False)
    assert llc.stats["traffic_ops"] == 4


def test_llc_dirty_eviction_statistics():
    llc = make_llc(size=1024, assoc=2)
    stride = llc.params.num_sets * 64
    llc.fill(0, dirty=True)
    llc.fill(stride)
    victim = llc.fill(2 * stride)
    assert victim is not None and victim.dirty
    assert llc.stats["dirty_evictions"] == 1
