"""Unit tests for the Region Density Tracking Table."""

from repro.common.addressing import BLOCK_SIZE, REGION_SIZE
from repro.core.config import BuMPConfig
from repro.core.rdtt import RegionDensityTracker, TerminationReason


def block(region, offset):
    return region * REGION_SIZE + offset * BLOCK_SIZE


def test_first_access_allocates_in_trigger_table():
    rdtt = RegionDensityTracker()
    rdtt.observe_access(block(5, 2), pc=0x400, is_write=False)
    entry = rdtt.lookup_active(block(5, 0))
    assert entry is not None
    assert entry.trigger_pc == 0x400
    assert entry.trigger_offset == 2
    assert entry.accessed_blocks() == 1
    assert len(rdtt.density) == 0


def test_second_access_promotes_to_density_table():
    """Figure 7, events 1-3: allocate, transfer, update."""
    rdtt = RegionDensityTracker()
    rdtt.observe_access(block(5, 2), pc=0x400, is_write=False)
    rdtt.observe_access(block(5, 3), pc=0x404, is_write=False)
    assert len(rdtt.trigger) == 0
    assert len(rdtt.density) == 1
    entry = rdtt.lookup_active(block(5, 0))
    assert entry.accessed_blocks() == 2
    # The trigger PC/offset of the *first* access is preserved.
    assert entry.trigger_pc == 0x400 and entry.trigger_offset == 2
    rdtt.observe_access(block(5, 0), pc=0x408, is_write=False)
    assert rdtt.lookup_active(block(5, 0)).accessed_blocks() == 3


def test_store_access_sets_dirty_bit():
    rdtt = RegionDensityTracker()
    rdtt.observe_access(block(1, 0), pc=1, is_write=False)
    assert not rdtt.lookup_active(block(1, 0)).dirty
    rdtt.observe_access(block(1, 1), pc=1, is_write=True)
    assert rdtt.lookup_active(block(1, 0)).dirty


def test_eviction_terminates_active_region():
    """Figure 7, event 4: an eviction in an active region terminates it."""
    rdtt = RegionDensityTracker()
    for offset in range(10):
        rdtt.observe_access(block(7, offset), pc=0x400, is_write=False)
    terminated = rdtt.observe_eviction(block(7, 3), dirty=False)
    assert terminated is not None
    assert terminated.reason is TerminationReason.EVICTION
    assert terminated.entry.accessed_blocks() == 10
    assert terminated.is_high_density(8)
    assert rdtt.lookup_active(block(7, 0)) is None


def test_eviction_outside_tracked_regions_returns_none():
    rdtt = RegionDensityTracker()
    assert rdtt.observe_eviction(block(99, 0), dirty=True) is None


def test_eviction_terminates_single_access_region_as_low_density():
    rdtt = RegionDensityTracker()
    rdtt.observe_access(block(3, 0), pc=1, is_write=False)
    terminated = rdtt.observe_eviction(block(3, 0), dirty=False)
    assert terminated is not None
    assert not terminated.is_high_density(8)


def test_density_table_conflict_reports_termination():
    config = BuMPConfig(trigger_entries=16, density_entries=16, associativity=16)
    rdtt = RegionDensityTracker(config)
    # Promote 17 distinct regions into the fully-associative density table;
    # the 17th promotion must displace the least recently used region.
    terminated = []
    for region in range(17):
        terminated += rdtt.observe_access(block(region, 0), pc=0x10, is_write=False)
        terminated += rdtt.observe_access(block(region, 1), pc=0x10, is_write=False)
    conflict_terms = [t for t in terminated if t.reason is TerminationReason.CONFLICT]
    assert len(conflict_terms) == 1
    assert conflict_terms[0].entry.region == 0


def test_trigger_table_conflict_reports_low_density_region():
    config = BuMPConfig(trigger_entries=16, density_entries=16, associativity=16)
    rdtt = RegionDensityTracker(config)
    terminated = []
    for region in range(17):
        terminated += rdtt.observe_access(block(region, 0), pc=0x10, is_write=False)
    assert len(terminated) == 1
    assert terminated[0].entry.accessed_blocks() == 1


def test_active_region_count_and_storage():
    rdtt = RegionDensityTracker()
    assert rdtt.active_regions == 0
    rdtt.observe_access(block(1, 0), pc=1, is_write=False)
    rdtt.observe_access(block(2, 0), pc=1, is_write=False)
    rdtt.observe_access(block(2, 1), pc=1, is_write=False)
    assert rdtt.active_regions == 2
    # Section IV.D: the RDTT costs roughly 2.5KB + 3KB.
    assert 4 * 1024 <= rdtt.storage_bits() / 8 <= 8 * 1024


def test_repeated_access_to_same_block_does_not_inflate_density():
    rdtt = RegionDensityTracker()
    for _ in range(5):
        rdtt.observe_access(block(4, 2), pc=1, is_write=False)
    # A single-block region bounces between trigger and density tables but
    # its density never exceeds one block.
    assert rdtt.lookup_active(block(4, 0)).accessed_blocks() == 1
