"""Regression corpus: every promoted spec replays through the full oracle."""

from pathlib import Path

import pytest

from repro.fuzz import (
    SPEC_FORMAT_VERSION,
    corpus_paths,
    load_spec,
    materialize,
    run_oracle,
    save_spec,
    spec_fingerprint,
)

CORPUS_DIR = Path(__file__).parent / "fuzz_corpus"


def _corpus():
    paths = corpus_paths(CORPUS_DIR)
    assert paths, f"fuzz corpus at {CORPUS_DIR} must not be empty"
    return paths


@pytest.mark.parametrize("path", _corpus(), ids=lambda p: p.stem)
class TestCorpusReplay:
    def test_replays_clean_through_the_oracle(self, path):
        report = run_oracle(load_spec(path))
        assert report.ok, report.describe()

    def test_materializes_and_stays_small(self, path):
        case = materialize(load_spec(path))
        # Corpus entries run inside tier-1 on every push: keep them short.
        assert case.total_accesses <= 2000, (
            f"{path.name} is too large for the regression corpus")


class TestCorpusHygiene:
    def test_labels_are_unique_and_descriptive(self):
        specs = [load_spec(path) for path in _corpus()]
        labels = [spec["label"] for spec in specs]
        assert len(labels) == len(set(labels))
        assert all(label.startswith("corpus-") for label in labels)

    def test_fingerprints_are_unique(self):
        digests = [spec_fingerprint(load_spec(path)) for path in _corpus()]
        assert len(digests) == len(set(digests))


class TestCodec:
    def test_save_load_round_trip(self, tmp_path):
        spec = load_spec(_corpus()[0])
        path = save_spec(spec, tmp_path / "copy.json")
        assert load_spec(path) == spec

    def test_corrupt_json_is_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt fuzz spec"):
            load_spec(path)

    def test_non_object_payload_is_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(ValueError, match="expected a JSON object"):
            load_spec(path)

    def test_wrong_format_version_is_rejected(self, tmp_path):
        spec = dict(load_spec(_corpus()[0]), format=SPEC_FORMAT_VERSION + 1)
        path = save_spec(spec, tmp_path / "future.json")
        with pytest.raises(ValueError, match="format"):
            load_spec(path)

    def test_corpus_paths_sorted_and_missing_dir_empty(self, tmp_path):
        assert corpus_paths(tmp_path / "nowhere") == []
        save_spec(load_spec(_corpus()[0]), tmp_path / "b.json")
        save_spec(load_spec(_corpus()[0]), tmp_path / "a.json")
        assert [p.name for p in corpus_paths(tmp_path)] == ["a.json", "b.json"]
