"""Unit tests for the complete BuMP engine and the Full-region foil."""

import pytest

from repro.common.addressing import BLOCK_SIZE, REGION_SIZE
from repro.common.request import LLCRequest, LLCRequestKind
from repro.cache.set_assoc import EvictedLine
from repro.core.bump import BuMPPredictor
from repro.core.config import BuMPConfig
from repro.core.fullregion import FullRegionStreamer


def block(region, offset):
    return region * REGION_SIZE + offset * BLOCK_SIZE


def demand(pc, address, store=False, core=0):
    kind = LLCRequestKind.DEMAND_WRITE if store else LLCRequestKind.DEMAND_READ
    return LLCRequest(core=core, pc=pc, block_address=address, kind=kind, is_store=store)


def evicted(address, dirty=False):
    return EvictedLine(block_address=address, dirty=dirty, prefetched=False, used=True)


def train_dense_region(bump, region, pc=0x400, blocks=10, store=False, trigger_offset=0):
    """Access ``blocks`` blocks of ``region`` then evict one to terminate it."""
    for offset in range(trigger_offset, trigger_offset + blocks):
        bump.on_access(demand(pc, block(region, offset % 16), store=store), hit=False)
    return bump.on_eviction(evicted(block(region, trigger_offset), dirty=store))


# --------------------------------------------------------------------- #
# Bulk read prediction
# --------------------------------------------------------------------- #
def test_untrained_miss_generates_no_bulk_read():
    bump = BuMPPredictor()
    actions = bump.on_miss(demand(0x400, block(1, 0)))
    assert actions.fetch_blocks == []


def test_high_density_termination_trains_bht_and_triggers_bulk_reads():
    bump = BuMPPredictor()
    train_dense_region(bump, region=1, pc=0x400, blocks=10)
    # A later miss by the same instruction at the same offset of a brand new
    # region triggers a bulk read of the region's other fifteen blocks.
    actions = bump.on_miss(demand(0x400, block(50, 0)))
    assert len(actions.fetch_blocks) == 15
    assert block(50, 0) not in actions.fetch_blocks
    assert set(actions.fetch_blocks) == {block(50, i) for i in range(1, 16)}


def test_low_density_region_does_not_train_bht():
    bump = BuMPPredictor()
    train_dense_region(bump, region=2, pc=0x500, blocks=3)
    actions = bump.on_miss(demand(0x500, block(60, 0)))
    assert actions.fetch_blocks == []


def test_bulk_read_keyed_by_pc_and_offset():
    bump = BuMPPredictor()
    train_dense_region(bump, region=3, pc=0x600, blocks=12, trigger_offset=4)
    # Same PC but different trigger offset: no prediction.
    assert bump.on_miss(demand(0x600, block(70, 0))).fetch_blocks == []
    # Same PC and matching offset: prediction fires.
    assert len(bump.on_miss(demand(0x600, block(70, 4))).fetch_blocks) == 15


def test_density_threshold_respected():
    config = BuMPConfig(density_threshold_blocks=12)
    bump = BuMPPredictor(config)
    train_dense_region(bump, region=4, pc=0x700, blocks=10)
    assert bump.on_miss(demand(0x700, block(80, 0))).fetch_blocks == []
    train_dense_region(bump, region=5, pc=0x700, blocks=13)
    assert len(bump.on_miss(demand(0x700, block(81, 0))).fetch_blocks) == 15


# --------------------------------------------------------------------- #
# Bulk write prediction
# --------------------------------------------------------------------- #
def test_dirty_eviction_of_active_modified_region_triggers_bulk_writeback():
    bump = BuMPPredictor()
    actions = train_dense_region(bump, region=6, pc=0x800, blocks=10, store=True)
    # The terminating dirty eviction itself must stream the rest of the region.
    assert len(actions.writeback_blocks) == 15
    assert block(6, 0) not in actions.writeback_blocks


def test_clean_eviction_of_modified_region_defers_to_drt():
    bump = BuMPPredictor()
    for offset in range(10):
        bump.on_access(demand(0x900, block(7, offset), store=True), hit=False)
    clean_term = bump.on_eviction(evicted(block(7, 2), dirty=False))
    assert clean_term.writeback_blocks == []
    assert bump.drt.contains(7)
    # The later dirty eviction of another block finds the region in the DRT.
    actions = bump.on_eviction(evicted(block(7, 5), dirty=True))
    assert len(actions.writeback_blocks) == 15
    assert not bump.drt.contains(7)


def test_clean_region_never_enters_drt():
    bump = BuMPPredictor()
    train_dense_region(bump, region=8, pc=0xA00, blocks=10, store=False)
    assert len(bump.drt) == 0


def test_dirty_eviction_without_tracking_generates_nothing():
    bump = BuMPPredictor()
    actions = bump.on_eviction(evicted(block(99, 3), dirty=True))
    assert actions.writeback_blocks == []


def test_conflict_terminated_modified_region_lands_in_drt():
    config = BuMPConfig(trigger_entries=16, density_entries=16, associativity=16)
    bump = BuMPPredictor(config)
    # Fill the density table with 16 dense modified regions, then promote a
    # 17th to force a conflict termination of the oldest one.
    for region in range(17):
        for offset in range(9):
            bump.on_access(demand(0xB00, block(region, offset), store=True), hit=False)
    assert bump.drt.contains(0)


# --------------------------------------------------------------------- #
# Overheads and bookkeeping
# --------------------------------------------------------------------- #
def test_total_storage_is_about_14_kilobytes():
    bump = BuMPPredictor()
    assert bump.storage_bits() / 8 / 1024 == pytest.approx(14.0, abs=2.5)


def test_structure_access_counts_accumulate():
    bump = BuMPPredictor()
    train_dense_region(bump, region=10, pc=0xC00, blocks=10)
    bump.on_miss(demand(0xC00, block(90, 0)))
    counts = bump.structure_access_counts()
    assert counts["rdtt"] > 0
    assert counts["bht_drt"] > 0


# --------------------------------------------------------------------- #
# Full-region foil
# --------------------------------------------------------------------- #
def test_full_region_fetches_whole_region_on_every_miss():
    streamer = FullRegionStreamer()
    actions = streamer.on_miss(demand(0x1, block(3, 5)))
    assert len(actions.fetch_blocks) == 15
    assert block(3, 5) not in actions.fetch_blocks


def test_full_region_writes_back_whole_region_on_dirty_eviction():
    streamer = FullRegionStreamer()
    assert streamer.on_eviction(evicted(block(4, 1), dirty=False)).writeback_blocks == []
    actions = streamer.on_eviction(evicted(block(4, 1), dirty=True))
    assert len(actions.writeback_blocks) == 15


def test_full_region_needs_no_storage():
    assert FullRegionStreamer().storage_bits() == 0
