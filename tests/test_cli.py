"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def run_cli(capsys, *argv):
    status = main(list(argv))
    captured = capsys.readouterr()
    return status, captured.out


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as err:
            build_parser().parse_args(["--version"])
        assert err.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "no_such_workload"])

    def test_every_experiment_name_is_registered(self):
        expected = {"figure1", "figure2", "figure3", "figure5", "figure8", "figure9",
                    "figure10", "figure11", "figure12", "figure13", "table1", "table4"}
        assert set(EXPERIMENTS) == expected


class TestCommands:
    def test_workloads_lists_all_six(self, capsys):
        status, out = run_cli(capsys, "workloads")
        assert status == 0
        for name in ("data_serving", "media_streaming", "online_analytics",
                     "software_testing", "web_search", "web_serving"):
            assert name in out

    def test_characterize_prints_metrics(self, capsys):
        status, out = run_cli(capsys, "characterize", "web_search",
                              "--accesses", "4000", "--cores", "4")
        assert status == 0
        assert "store_fraction" in out
        assert "region density" in out

    def test_run_prints_summary(self, capsys):
        status, out = run_cli(capsys, "run", "web_serving", "--system", "base_open",
                              "--accesses", "4000", "--warmup", "0.25")
        assert status == 0
        assert "row_buffer_hit_ratio" in out
        assert "base_open" in out

    def test_run_accepts_extended_systems(self, capsys):
        status, out = run_cli(capsys, "run", "web_serving", "--system", "bump_vwq",
                              "--accesses", "4000", "--warmup", "0.25")
        assert status == 0
        assert "bump_vwq" in out

    def test_run_rejects_unknown_system(self, capsys):
        with pytest.raises(SystemExit) as err:
            run_cli(capsys, "run", "web_serving", "--system", "warp_drive",
                    "--accesses", "2000")
        assert "warp_drive" in str(err.value)

    def test_compare_prints_one_row_per_system(self, capsys):
        status, out = run_cli(capsys, "compare", "web_serving",
                              "--systems", "base_open,bump",
                              "--accesses", "4000", "--warmup", "0.25")
        assert status == 0
        assert "base_open" in out and "bump" in out

    def test_compare_rejects_empty_system_list(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "compare", "web_serving", "--systems", " , ",
                    "--accesses", "2000")

    def test_campaign_runs_and_resumes_from_store(self, capsys, tmp_path):
        store = tmp_path / "artifacts"
        argv = ["campaign", "--workloads", "web_search",
                "--systems", "base_open,bump", "--accesses", "2000",
                "--cores", "4", "--workers", "2", "--store", str(store),
                "--quiet"]
        status, out = run_cli(capsys, *argv)
        assert status == 0
        assert "2 simulated, 0 from store" in out
        status, out = run_cli(capsys, *argv)
        assert status == 0
        assert "0 simulated, 2 from store" in out

    def test_campaign_rejects_unknown_workload(self, capsys):
        with pytest.raises(SystemExit) as err:
            run_cli(capsys, "campaign", "--workloads", "warp_drive")
        assert "warp_drive" in str(err.value)

    def test_campaign_rejects_bad_seeds(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "campaign", "--workloads", "web_search",
                    "--seeds", "one,two")

    def test_experiment_table4(self, capsys):
        status, out = run_cli(capsys, "experiment", "table4",
                              "--workloads", "web_serving", "--accesses", "4000")
        assert status == 0
        assert "web_serving" in out

    def test_experiment_rejects_unknown_name(self, capsys):
        with pytest.raises(SystemExit) as err:
            run_cli(capsys, "experiment", "figure99")
        assert "figure99" in str(err.value)

    def test_scaling_tables(self, capsys):
        status, out = run_cli(capsys, "scaling")
        assert status == 0
        assert "RDTT" in out and "BHT" in out
        assert "virtualization" in out.lower()

    def test_trace_generation_round_trips(self, capsys, tmp_path):
        from repro.trace.io import load_trace

        output = tmp_path / "trace.npz"
        status, out = run_cli(capsys, "trace", "generate", "web_search",
                              "--accesses", "2000",
                              "--cores", "4", "-o", str(output))
        assert status == 0
        assert output.exists()
        assert len(load_trace(output)) == 2000

    def test_trace_ingest_replays_a_saved_trace(self, capsys, tmp_path):
        output = tmp_path / "trace.npy"
        status, _ = run_cli(capsys, "trace", "generate", "web_search",
                            "--accesses", "2000",
                            "--cores", "4", "-o", str(output))
        assert status == 0
        status, out = run_cli(capsys, "trace", "ingest", str(output),
                              "--system", "bump", "--mmap")
        assert status == 0
        assert "replayed 2000 accesses" in out
        assert "row_buffer_hit_ratio" in out


class TestScenarioCommands:
    def test_list_ships_the_catalog(self, capsys):
        status, out = run_cli(capsys, "scenario", "list")
        assert status == 0
        for name in ("tenant-colocation", "diurnal-ramp", "antagonist-burst",
                     "phase-change", "idle-cores", "all-six-mix"):
            assert name in out

    def test_describe_prints_phase_table(self, capsys):
        status, out = run_cli(capsys, "scenario", "describe", "antagonist-burst")
        assert status == 0
        assert "online_analytics@12-15" in out
        assert "bursts" in out

    def test_describe_rejects_unknown_scenario(self, capsys):
        with pytest.raises(SystemExit) as err:
            run_cli(capsys, "scenario", "describe", "no-such-scenario")
        assert "no-such-scenario" in str(err.value)

    def test_run_streams_a_scaled_scenario(self, capsys):
        status, out = run_cli(capsys, "scenario", "run", "idle-cores",
                              "--system", "base_open", "--scale", "0.002",
                              "--engine", "flat")
        assert status == 0
        assert "row_buffer_hit_ratio" in out
        assert "idle-cores" in out


class TestTelemetryCli:
    def test_run_with_telemetry_prints_summary(self, capsys):
        status, out = run_cli(capsys, "run", "web_search", "--system", "bump",
                              "--accesses", "4000", "--telemetry", "full")
        assert status == 0
        assert "telemetry[full]:" in out
        assert "sample(s)" in out

    def test_events_flag_implies_full_and_report_renders_the_log(
            self, capsys, tmp_path):
        log = tmp_path / "run.jsonl"
        status, out = run_cli(capsys, "run", "web_search", "--system", "bump",
                              "--accesses", "4000", "--events", str(log))
        assert status == 0
        assert "telemetry[full]:" in out
        assert log.exists()

        status, out = run_cli(capsys, "report", str(log))
        assert status == 0
        assert "cycle" in out          # timeline table
        assert "chunk_service" in out  # aggregated stage span
        assert "run_start" in out      # mark table

        status, out = run_cli(capsys, "report", str(log), "--json")
        assert status == 0
        import json

        summary = json.loads(out)
        assert summary["mode"] == "full"
        assert summary["samples"] >= 1

    def test_scenario_run_accepts_telemetry(self, capsys):
        status, out = run_cli(capsys, "scenario", "run", "phase-change",
                              "--system", "base_open", "--scale", "0.002",
                              "--telemetry", "spans")
        assert status == 0
        assert "telemetry[spans]:" in out

    def test_report_caches_renders_counters(self, capsys):
        status, out = run_cli(capsys, "report", "--caches")
        assert status == 0
        assert "trace cache" in out
        for key in ("entries", "capacity", "hits", "misses", "hit_ratio"):
            assert key in out

    def test_report_campaign_metrics_file(self, capsys, tmp_path):
        status, out = run_cli(capsys, "campaign",
                              "--workloads", "web_search",
                              "--systems", "base_open,bump",
                              "--accesses", "1500",
                              "--store", str(tmp_path / "artifacts"), "--quiet")
        assert status == 0
        assert "campaign metrics:" in out
        metrics_files = list((tmp_path / "artifacts" / "metrics").glob("*.json"))
        assert len(metrics_files) == 1

        status, out = run_cli(capsys, "report", str(metrics_files[0]))
        assert status == 0
        assert "job(s)" in out
        assert "worker utilization" in out
        assert "web_search" in out

    def test_report_without_arguments_exits(self, capsys):
        with pytest.raises(SystemExit) as err:
            run_cli(capsys, "report")
        assert "nothing to report" in str(err.value)

    def test_report_rejects_unreadable_inputs(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            run_cli(capsys, "report", str(tmp_path / "missing.jsonl"))
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        with pytest.raises(SystemExit):
            run_cli(capsys, "report", str(bad))

    def test_run_rejects_unknown_telemetry_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "web_search",
                                       "--telemetry", "loud"])


class TestFailurePaths:
    """Every broken invocation must exit nonzero with an actionable message,
    never a traceback."""

    def test_scenario_run_rejects_unknown_scenario(self, capsys):
        with pytest.raises(SystemExit) as err:
            run_cli(capsys, "scenario", "run", "no-such-scenario",
                    "--system", "base_open")
        message = str(err.value)
        assert "no-such-scenario" in message
        assert "known scenarios" in message

    def test_run_rejects_missing_snapshot_file(self, capsys, tmp_path):
        missing = tmp_path / "nowhere.npz"
        with pytest.raises(SystemExit) as err:
            run_cli(capsys, "run", "web_search", "--accesses", "2000",
                    "--snapshot", str(missing))
        assert err.value.code not in (0, None)
        assert "nowhere.npz" in str(err.value)

    def test_run_rejects_corrupt_snapshot_file(self, capsys, tmp_path):
        corrupt = tmp_path / "corrupt.npz"
        corrupt.write_bytes(b"this is not a numpy archive")
        with pytest.raises(SystemExit) as err:
            run_cli(capsys, "run", "web_search", "--accesses", "2000",
                    "--snapshot", str(corrupt))
        assert err.value.code not in (0, None)
        assert "corrupt" in str(err.value)

    def test_snapshot_info_rejects_corrupt_file(self, capsys, tmp_path):
        corrupt = tmp_path / "corrupt.npz"
        corrupt.write_bytes(b"\x00\x01garbage")
        with pytest.raises(SystemExit) as err:
            run_cli(capsys, "snapshot", "info", str(corrupt))
        assert "cannot read snapshot" in str(err.value)

    def test_snapshot_info_rejects_missing_file(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as err:
            run_cli(capsys, "snapshot", "info", str(tmp_path / "gone.npz"))
        assert err.value.code not in (0, None)

    def test_bad_interp_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as err:
            run_cli(capsys, "run", "web_search", "--interp", "quantum")
        assert err.value.code == 2  # argparse usage error

    def test_bad_cache_engine_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as err:
            run_cli(capsys, "scenario", "run", "idle-cores",
                    "--engine", "hashmap")
        assert err.value.code == 2


class TestFuzzCli:
    def test_smoke_run_passes_and_writes_a_summary(self, capsys, tmp_path):
        summary = tmp_path / "summary.json"
        status, out = run_cli(capsys, "fuzz", "--budget", "2", "--seed", "0",
                              "--summary", str(summary),
                              "--artifacts", str(tmp_path / "artifacts"))
        assert status == 0
        assert "0 failure(s)" in out
        import json

        payload = json.loads(summary.read_text())
        assert payload["failures"] == []
        assert payload["generated_examined"] == 2

    def test_corpus_replay_is_included(self, capsys, tmp_path):
        status, out = run_cli(capsys, "fuzz", "--budget", "0",
                              "--corpus", "tests/fuzz_corpus",
                              "--artifacts", str(tmp_path / "artifacts"))
        assert status == 0
        assert "corpus" in out

    def test_failure_produces_artifact_and_nonzero_exit(
            self, capsys, tmp_path, monkeypatch):
        from repro.cache.flat import FlatSetAssociativeCache

        original = FlatSetAssociativeCache._victim_slot

        def skewed(self, set_index, base):
            slot = original(self, set_index, base)
            return base + (slot - base + 1) % self.ways

        monkeypatch.setattr(FlatSetAssociativeCache, "_victim_slot", skewed)
        artifacts = tmp_path / "artifacts"
        status, out = run_cli(capsys, "fuzz", "--budget", "4", "--seed", "0",
                              "--artifacts", str(artifacts),
                              "--shrink-attempts", "30")
        assert status == 1
        saved = list(artifacts.glob("*.json"))
        assert saved, "a shrunk reproducer artifact must be written"

    def test_missing_corpus_directory_exits(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as err:
            run_cli(capsys, "fuzz", "--budget", "0",
                    "--corpus", str(tmp_path / "no-corpus"))
        assert err.value.code not in (0, None)
