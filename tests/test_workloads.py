"""Unit tests for the workload specs, the trace generator and the catalog."""

import pytest

from repro.common.addressing import BLOCK_SIZE
from repro.common.request import AccessType
from repro.workloads.catalog import DISPLAY_NAMES, WORKLOADS, display_name, get_workload, workload_names
from repro.workloads.generator import CoreGenerator, generate_trace, iterate_trace, trace_store_fraction
from repro.workloads.spec import WorkloadSpec


# --------------------------------------------------------------------- #
# Spec validation
# --------------------------------------------------------------------- #
def test_spec_rejects_invalid_parameters():
    with pytest.raises(ValueError):
        WorkloadSpec(name="bad", coarse_object_bytes=(32, 16))
    with pytest.raises(ValueError):
        WorkloadSpec(name="bad", coarse_job_fraction=1.5)
    with pytest.raises(ValueError):
        WorkloadSpec(name="bad", coarse_touch_fraction=0.0)
    with pytest.raises(ValueError):
        WorkloadSpec(name="bad", jobs_per_core=0)


def test_spec_override_returns_copy():
    spec = WorkloadSpec(name="x")
    other = spec.with_overrides(coarse_job_fraction=0.9)
    assert other.coarse_job_fraction == 0.9
    assert spec.coarse_job_fraction != 0.9


def test_mean_coarse_object_blocks():
    spec = WorkloadSpec(name="x", coarse_object_bytes=(1024, 3072))
    assert spec.mean_coarse_object_blocks == pytest.approx(32.0)


# --------------------------------------------------------------------- #
# Catalog
# --------------------------------------------------------------------- #
def test_catalog_contains_the_six_paper_workloads():
    assert workload_names() == [
        "data_serving", "media_streaming", "online_analytics",
        "software_testing", "web_search", "web_serving",
    ]
    assert set(WORKLOADS) == set(workload_names())
    assert set(DISPLAY_NAMES) == set(workload_names())


def test_get_workload_normalises_names():
    assert get_workload("Web Search").name == "web_search"
    assert get_workload("web-search").name == "web_search"
    with pytest.raises(KeyError):
        get_workload("spec_cpu")
    assert display_name("web_search") == "Web Search"


def test_catalog_specs_reflect_paper_characteristics():
    ds = get_workload("data_serving")
    ws = get_workload("web_search")
    ms = get_workload("media_streaming")
    st = get_workload("software_testing")
    # Write-heavy store vs. read-mostly search.
    assert ds.coarse_write_fraction > ws.coarse_write_fraction
    # Media streaming is the most sequential workload.
    assert ms.coarse_sequential_fraction == max(
        spec.coarse_sequential_fraction for spec in WORKLOADS.values()
    )
    # Software testing keeps the most operations in flight (RDTT pressure).
    assert st.jobs_per_core == max(spec.jobs_per_core for spec in WORKLOADS.values())


# --------------------------------------------------------------------- #
# Trace generation
# --------------------------------------------------------------------- #
def test_trace_is_deterministic_for_a_seed():
    spec = get_workload("web_search")
    first = generate_trace(spec, 2000, num_cores=4, seed=7)
    second = generate_trace(spec, 2000, num_cores=4, seed=7)
    assert [(a.core, a.pc, a.address, a.type) for a in first] == [
        (a.core, a.pc, a.address, a.type) for a in second
    ]


def test_trace_changes_with_seed():
    spec = get_workload("web_search")
    first = generate_trace(spec, 1000, num_cores=4, seed=1)
    second = generate_trace(spec, 1000, num_cores=4, seed=2)
    assert [a.address for a in first] != [a.address for a in second]


def test_trace_interleaves_cores_round_robin():
    spec = get_workload("data_serving")
    trace = generate_trace(spec, 64, num_cores=16, seed=3)
    assert [a.core for a in trace[:16]] == list(range(16))
    assert [a.core for a in trace[16:32]] == list(range(16))


def test_iterate_trace_matches_generate_trace():
    spec = get_workload("online_analytics")
    listed = generate_trace(spec, 500, num_cores=2, seed=9)
    streamed = list(iterate_trace(spec, 500, num_cores=2, seed=9))
    assert [a.address for a in listed] == [a.address for a in streamed]


def test_trace_contains_loads_and_stores_with_positive_instruction_counts():
    spec = get_workload("web_serving")
    trace = generate_trace(spec, 5000, num_cores=8, seed=5)
    types = {a.type for a in trace}
    assert types == {AccessType.LOAD, AccessType.STORE}
    assert all(a.instructions >= 1 for a in trace)
    assert all(a.address >= 0 for a in trace)
    store_fraction = trace_store_fraction(trace)
    assert 0.05 < store_fraction < 0.7


def test_core_generator_produces_coarse_and_fine_pcs():
    spec = get_workload("web_search")
    generator = CoreGenerator(spec, core=0, seed=11)
    pcs = {generator.next_access().pc for _ in range(3000)}
    coarse = [pc for pc in pcs if 0x400000 <= pc < 0x600000]
    fine = [pc for pc in pcs if 0x600000 <= pc < 0x700000]
    assert coarse and fine


def test_generate_trace_rejects_negative_length():
    with pytest.raises(ValueError):
        generate_trace(get_workload("web_search"), -1)


def test_coarse_scans_touch_contiguous_region_blocks():
    """A mostly-sequential workload's coarse PCs touch dense block runs."""
    spec = get_workload("media_streaming").with_overrides(
        coarse_sequential_fraction=1.0, coarse_job_fraction=1.0, jobs_per_core=1,
        coarse_pc_noise=0.0,
    )
    generator = CoreGenerator(spec, core=0, seed=13)
    accesses = [generator.next_access() for _ in range(200)]
    blocks = [a.address // BLOCK_SIZE for a in accesses]
    forward_steps = sum(1 for a, b in zip(blocks, blocks[1:]) if b - a in (0, 1))
    assert forward_steps > len(blocks) * 0.7
