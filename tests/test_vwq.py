"""Unit tests for the Virtual Write Queue eager-writeback baseline."""

import pytest

from repro.common.addressing import BLOCK_SIZE, REGION_SIZE
from repro.cache.set_assoc import EvictedLine
from repro.writeback.vwq import VirtualWriteQueue


def evicted(address, dirty=True):
    return EvictedLine(block_address=address, dirty=dirty, prefetched=False, used=True)


def test_clean_eviction_generates_nothing():
    vwq = VirtualWriteQueue()
    assert vwq.on_eviction(evicted(0, dirty=False)).writeback_blocks == []


def test_dirty_eviction_targets_adjacent_blocks():
    vwq = VirtualWriteQueue(lookahead_blocks=3)
    base = 8 * REGION_SIZE + 4 * BLOCK_SIZE
    actions = vwq.on_eviction(evicted(base))
    assert len(actions.writeback_blocks) == 3
    for candidate in actions.writeback_blocks:
        assert abs(candidate - base) <= 3 * BLOCK_SIZE
        assert candidate != base


def test_candidates_stay_within_the_dram_row_region():
    vwq = VirtualWriteQueue(lookahead_blocks=3)
    base = 8 * REGION_SIZE  # first block of a region
    actions = vwq.on_eviction(evicted(base))
    for candidate in actions.writeback_blocks:
        assert base <= candidate < base + REGION_SIZE


def test_lookahead_budget_respected():
    vwq = VirtualWriteQueue(lookahead_blocks=2)
    actions = vwq.on_eviction(evicted(10 * REGION_SIZE + 5 * BLOCK_SIZE))
    assert len(actions.writeback_blocks) == 2
    assert vwq.stats["probes_issued"] == 2


def test_invalid_lookahead_rejected():
    with pytest.raises(ValueError):
        VirtualWriteQueue(lookahead_blocks=0)


def test_vwq_storage_is_negligible():
    assert VirtualWriteQueue().storage_bits() / 8 / 1024 < 2.0
