"""Parity guards for the columnar trace pipeline and the cache engines.

Two acceptance bars live here:

* the columnar refactor (PR 2): for every named paper configuration and
  every workload at the default seed, simulating the trace through the
  chunked columnar path produces a :class:`SimulationResult` *identical* --
  full content fingerprint, every counter -- to the legacy object-list path;
* the flat-array cache engine: for the same matrix, the flat engine's fused
  hot path produces results bit-identical to the legacy dict engine;
* the vectorized batch interpreter (PR 7): for the same matrix again, the
  two-pass vector interpreter produces results bit-identical to the fused
  scalar row loop.
"""

import pytest

from repro.common.params import CacheParams, SystemParams
from repro.exec.campaign import result_fingerprint
from repro.sim.config import named_configs
from repro.sim.runner import (
    DEFAULT_SEED,
    build_trace,
    run_trace,
    run_workload_streaming,
)
from repro.workloads.catalog import workload_names

#: Scaled-down LLC so evictions and writebacks occur within a short trace.
SMALL_SYSTEM = SystemParams().scaled(
    llc=CacheParams(size_bytes=256 * 1024, associativity=16, hit_latency_cycles=8),
)
ACCESSES = 3_000
CORES = 8
WARMUP = 0.4
CHUNK = 256  # deliberately misaligned with the warmup boundary


def _small(config):
    return config.with_overrides(system=SMALL_SYSTEM)


@pytest.mark.parametrize("workload", workload_names())
def test_chunked_columnar_path_matches_object_path(workload):
    """Six workloads x all named paper configs: bit-identical results."""
    trace = build_trace(workload, ACCESSES, num_cores=CORES, seed=DEFAULT_SEED)
    boxed = trace.to_accesses()
    for name, config in named_configs().items():
        config = _small(config)
        legacy = run_trace(boxed, config, workload_name=workload,
                           warmup_fraction=WARMUP)
        chunked = run_trace(trace.iter_chunks(CHUNK), config,
                            workload_name=workload, warmup_fraction=WARMUP,
                            num_accesses=ACCESSES)
        assert result_fingerprint(chunked) == result_fingerprint(legacy), (
            f"columnar path diverged from object path for {workload}/{name}")


@pytest.mark.parametrize("workload", workload_names())
def test_flat_engine_matches_dict_engine(workload):
    """Six workloads x all named paper configs: both cache engines bit-identical."""
    trace = build_trace(workload, ACCESSES, num_cores=CORES, seed=DEFAULT_SEED)
    for name, config in named_configs().items():
        config = _small(config)
        flat = run_trace(trace, config, workload_name=workload,
                         warmup_fraction=WARMUP, cache_engine="flat")
        dict_engine = run_trace(trace, config, workload_name=workload,
                                warmup_fraction=WARMUP, cache_engine="dict")
        assert result_fingerprint(flat) == result_fingerprint(dict_engine), (
            f"flat cache engine diverged from dict engine for {workload}/{name}")


@pytest.mark.parametrize("workload", workload_names())
def test_vector_interp_matches_scalar_interp(workload):
    """Six workloads x all named paper configs: both interpreters bit-identical."""
    trace = build_trace(workload, ACCESSES, num_cores=CORES, seed=DEFAULT_SEED)
    for name, config in named_configs().items():
        config = _small(config)
        scalar = run_trace(trace, config, workload_name=workload,
                           warmup_fraction=WARMUP, interp="scalar")
        vector = run_trace(trace, config, workload_name=workload,
                           warmup_fraction=WARMUP, interp="vector")
        assert result_fingerprint(vector) == result_fingerprint(scalar), (
            f"vector interpreter diverged from scalar for {workload}/{name}")


def test_streaming_generation_matches_materialized_path():
    """Generator-chunk streaming equals cache-materialized simulation."""
    config = _small(named_configs(["bump"])["bump"])
    trace = build_trace("web_search", ACCESSES, num_cores=CORES, seed=DEFAULT_SEED)
    materialized = run_trace(trace, config, workload_name="web_search",
                             warmup_fraction=WARMUP)
    streamed = run_workload_streaming("web_search", config, num_accesses=ACCESSES,
                                      num_cores=CORES, seed=DEFAULT_SEED,
                                      warmup_fraction=WARMUP, chunk_size=CHUNK)
    assert result_fingerprint(streamed) == result_fingerprint(materialized)


def test_materialized_chunk_list_counts_accesses_not_chunks():
    """run_trace on a [TraceBuffer, ...] places the warmup boundary by access count."""
    config = _small(named_configs(["base_open"])["base_open"])
    trace = build_trace("web_search", 2_000, num_cores=4, seed=DEFAULT_SEED)
    reference = run_trace(trace, config, warmup_fraction=0.5)
    chunk_list = list(trace.iter_chunks(400))
    from_list = run_trace(chunk_list, config, warmup_fraction=0.5)
    assert from_list.counters["accesses"] == reference.counters["accesses"] == 1_000
    assert result_fingerprint(from_list) == result_fingerprint(reference)


def test_warmup_boundary_alignment_does_not_matter():
    """The measurement split lands mid-chunk, at a chunk edge, everywhere."""
    config = _small(named_configs(["base_open"])["base_open"])
    trace = build_trace("data_serving", 2_000, num_cores=4, seed=DEFAULT_SEED)
    reference = run_trace(trace.to_accesses(), config, warmup_fraction=0.5)
    for chunk_size in (1, 100, 999, 1000, 1001, 2_000):
        chunked = run_trace(trace.iter_chunks(chunk_size), config,
                            warmup_fraction=0.5, num_accesses=2_000)
        assert result_fingerprint(chunked) == result_fingerprint(reference), (
            f"divergence at chunk_size={chunk_size}")
