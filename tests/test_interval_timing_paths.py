"""Interval timing model through the streaming and scenario paths.

``timing_model="interval"`` was previously exercised only by the
timing-sensitivity ablation; these tests pin down its behaviour on the two
production paths (streaming single workloads and compiled scenarios), its
engine-independence (TimingSummary-derived fields bit-identical between the
flat and dict cache engines and the flat and object DRAM engines), its
constructor validation, and the zero-miss edge where
``instructions_per_miss`` is infinite.
"""

import math

import numpy as np
import pytest

from repro.cpu.interval import IntervalTimingModel
from repro.exec.campaign import result_fingerprint
from repro.scenario.catalog import get_scenario
from repro.scenario.runner import run_scenario
from repro.sim.config import base_open, bump_system
from repro.sim.runner import run_trace, run_workload_streaming
from repro.trace.buffer import TraceBuffer

ACCESSES = 4_000


def _interval(config_factory):
    return config_factory().with_overrides(timing_model="interval")


class TestValidation:
    def test_defaults_construct(self):
        model = IntervalTimingModel()
        assert model.params is not None

    @pytest.mark.parametrize("independence", [0.0, -0.1, 1.5])
    def test_independence_must_be_in_unit_interval_exclusive_zero(self, independence):
        with pytest.raises(ValueError, match="independence"):
            IntervalTimingModel(independence=independence)

    def test_independence_of_exactly_one_is_allowed(self):
        assert IntervalTimingModel(independence=1.0) is not None

    @pytest.mark.parametrize("mshr", [0, -3])
    def test_mshr_entries_must_be_positive(self, mshr):
        with pytest.raises(ValueError, match="mshr_entries"):
            IntervalTimingModel(mshr_entries=mshr)


class TestZeroMissGuard:
    def test_infinite_instructions_per_miss_yields_finite_cycles(self):
        """A zero-miss run must produce finite, non-NaN cycle counts."""
        model = IntervalTimingModel()
        summary = model.summarize(
            instructions=1_000_000.0,
            load_demand_misses=0.0,
            covered_loads=0.0,
            llc_load_hits=500.0,
            average_dram_latency_bus_cycles=0.0,
            dram_elapsed_bus_cycles=0.0,
        )
        for field in ("cycles", "base_cycles", "stall_cycles",
                      "throughput_ipc", "elapsed_seconds"):
            value = getattr(summary, field)
            assert math.isfinite(value), field
            assert not math.isnan(value), field
        assert summary.cycles > 0.0
        assert summary.throughput_ipc > 0.0

    def test_l1_resident_interval_run_is_finite(self):
        """End to end: a trace with no LLC load misses under the interval model."""
        cores = 16
        n = 2_000
        rng = np.random.default_rng(0)
        core = rng.integers(0, cores, n).astype(np.int32)
        # One block per core: after the cold miss everything hits the L1.
        address = (core.astype(np.uint64) << np.uint64(32))
        pc = np.full(n, 0x400000, dtype=np.uint64)
        is_store = np.zeros(n, dtype=bool)
        instructions = np.ones(n, dtype=np.int32)
        trace = TraceBuffer(core, pc, address, is_store, instructions)
        result = run_trace(trace, _interval(base_open), warmup_fraction=0.5)
        assert math.isfinite(result.cycles) and not math.isnan(result.cycles)
        assert math.isfinite(result.throughput_ipc)
        assert result.cycles > 0.0


class TestEngineParity:
    def test_streaming_timing_identical_across_cache_engines(self):
        config = _interval(base_open)
        flat = run_workload_streaming("web_search", config,
                                      num_accesses=ACCESSES, chunk_size=1024,
                                      cache_engine="flat")
        dict_engine = run_workload_streaming("web_search", config,
                                             num_accesses=ACCESSES,
                                             chunk_size=1024,
                                             cache_engine="dict")
        # The TimingSummary-derived result fields, bit for bit.
        assert flat.cycles == dict_engine.cycles
        assert flat.throughput_ipc == dict_engine.throughput_ipc
        assert flat.elapsed_seconds == dict_engine.elapsed_seconds
        # And the rest of the result too.
        assert result_fingerprint(flat) == result_fingerprint(dict_engine)

    def test_streaming_timing_identical_across_dram_engines(self):
        config = _interval(base_open)
        flat = run_workload_streaming("data_serving", config,
                                      num_accesses=ACCESSES, chunk_size=1024,
                                      dram_engine="flat")
        obj = run_workload_streaming("data_serving", config,
                                     num_accesses=ACCESSES, chunk_size=1024,
                                     dram_engine="object")
        assert flat.cycles == obj.cycles
        assert flat.throughput_ipc == obj.throughput_ipc
        assert result_fingerprint(flat) == result_fingerprint(obj)

    def test_scenario_path_runs_interval_model_identically(self):
        scenario = get_scenario("tenant-colocation", scale=0.004)
        config = _interval(bump_system)
        flat = run_scenario(scenario, config, cache_engine="flat")
        dict_engine = run_scenario(scenario, config, cache_engine="dict")
        assert flat.cycles == dict_engine.cycles
        assert flat.throughput_ipc == dict_engine.throughput_ipc
        assert flat.elapsed_seconds == dict_engine.elapsed_seconds
        assert result_fingerprint(flat) == result_fingerprint(dict_engine)
        assert math.isfinite(flat.cycles)

    def test_interval_differs_from_analytic(self):
        """Sanity: the knob actually selects a different model."""
        analytic = run_workload_streaming("web_search", base_open(),
                                          num_accesses=ACCESSES)
        interval = run_workload_streaming("web_search", _interval(base_open),
                                          num_accesses=ACCESSES)
        assert analytic.cycles != interval.cycles
