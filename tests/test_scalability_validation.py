"""Tests for the Section VI scalability analysis and the validation suite."""

import pytest

from repro.analysis.scalability import (
    REFERENCE_CORES,
    REFERENCE_LLC_BYTES,
    scaled_bump_config,
    scaling_summary,
    storage_budget,
    storage_scaling_table,
    virtualization_storage_table,
)
from repro.analysis.validation import CheckKind, ValidationSuite, validate_headline_results
from repro.core.config import BuMPConfig


class TestScaledBuMPConfig:
    def test_reference_point_is_unchanged(self):
        config = scaled_bump_config()
        default = BuMPConfig()
        assert config.trigger_entries == default.trigger_entries
        assert config.density_entries == default.density_entries
        assert config.bht_entries == default.bht_entries
        assert config.drt_entries == default.drt_entries

    def test_rdtt_scales_with_cores(self):
        doubled = scaled_bump_config(num_cores=32)
        assert doubled.trigger_entries == 2 * BuMPConfig().trigger_entries
        assert doubled.density_entries == 2 * BuMPConfig().density_entries
        # Core count does not touch the DRT (LLC-capacity bound).
        assert doubled.drt_entries == BuMPConfig().drt_entries

    def test_drt_scales_with_llc(self):
        bigger_llc = scaled_bump_config(llc_bytes=2 * REFERENCE_LLC_BYTES)
        assert bigger_llc.drt_entries == 2 * BuMPConfig().drt_entries
        assert bigger_llc.trigger_entries == BuMPConfig().trigger_entries

    def test_bht_scales_with_consolidated_workloads(self):
        virtualized = scaled_bump_config(workloads_sharing=16)
        assert virtualized.bht_entries == 16 * BuMPConfig().bht_entries

    def test_entries_stay_multiples_of_associativity(self):
        config = scaled_bump_config(num_cores=24, llc_bytes=int(1.5 * REFERENCE_LLC_BYTES),
                                    workloads_sharing=3)
        for entries in (config.trigger_entries, config.density_entries,
                        config.bht_entries, config.drt_entries):
            assert entries % config.associativity == 0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            scaled_bump_config(num_cores=0)
        with pytest.raises(ValueError):
            scaled_bump_config(workloads_sharing=0)


class TestStorageBudgets:
    def test_native_budget_matches_section4d(self):
        budget = storage_budget()
        # Section IV.D: ~14KB total (2.5 + 3 + 4.5 + 4.25).
        assert 10.0 < budget.total_kib < 20.0
        assert 2.0 < budget.rdtt_kib < 9.0
        assert budget.per_core_kib < 2.0

    def test_virtualized_bht_matches_section6(self):
        summary = scaling_summary()
        # Section VI: 72KB BHT and ~5KB per core with one workload per core.
        assert summary["virtualized_bht_kib"] == pytest.approx(72.0, rel=0.35)
        assert summary["virtualized_per_core_kib"] == pytest.approx(5.0, rel=0.5)
        assert summary["native_total_kib"] < summary["virtualized_total_kib"]

    def test_scaling_table_grows_monotonically(self):
        table = storage_scaling_table(core_counts=(16, 32, 64))
        totals = [entry.total_kib for entry in table]
        assert totals == sorted(totals)
        per_core = [entry.per_core_kib for entry in table]
        # Per-core cost stays roughly flat (the scalability claim).
        assert max(per_core) < 2.5 * min(per_core)

    def test_virtualization_table_grows_with_workloads(self):
        table = virtualization_storage_table(workload_counts=(1, 4, 16))
        bht = [entry.bht_kib for entry in table]
        assert bht == sorted(bht)
        assert table[-1].workloads_sharing == 16


class TestValidationSuite:
    def test_relative_check(self):
        suite = ValidationSuite()
        assert suite.check_relative("close", measured=0.22, reference=0.23, tolerance=0.2)
        assert not suite.check_relative("far", measured=0.50, reference=0.23, tolerance=0.2)
        assert suite.pass_count == 1
        assert not suite.passed
        assert len(suite.failures()) == 1

    def test_relative_check_with_zero_reference(self):
        suite = ValidationSuite()
        assert suite.check_relative("zero", measured=0.05, reference=0.0, tolerance=0.1)
        assert not suite.check_relative("zero-fail", measured=0.5, reference=0.0, tolerance=0.1)

    def test_range_check_with_slack(self):
        suite = ValidationSuite()
        assert suite.check_range("in", measured=0.30, low=0.21, high=0.38)
        assert not suite.check_range("out", measured=0.60, low=0.21, high=0.38)
        assert suite.check_range("slack", measured=0.40, low=0.21, high=0.38, slack=0.2)

    def test_ordering_check(self):
        suite = ValidationSuite()
        values = {"base": 0.2, "sms": 0.3, "bump": 0.55}
        assert suite.check_ordering("order", values, ["base", "sms", "bump"])
        assert not suite.check_ordering("bad", values, ["bump", "sms", "base"])
        equal = {"a": 0.5, "b": 0.5}
        assert suite.check_ordering("ties ok", equal, ["a", "b"])
        assert not suite.check_ordering("strict ties", equal, ["a", "b"], strict=True)

    def test_predicate_check_and_render(self):
        suite = ValidationSuite("demo")
        suite.check_predicate("positive", 0.11, lambda v: v > 0, "> 0")
        report = suite.render()
        assert "demo: 1/1 checks passed" in report
        assert "PASS" in report
        assert suite.results[0].kind is CheckKind.PREDICATE

    def test_validate_headline_results_passes_on_paper_shaped_summary(self):
        summary = {
            "base_close": {"row_buffer_hit_ratio": 0.10, "energy_normalized": 1.00},
            "base_open": {"row_buffer_hit_ratio": 0.21, "energy_normalized": 0.86},
            "sms": {"row_buffer_hit_ratio": 0.30, "energy_normalized": 0.80},
            "vwq": {"row_buffer_hit_ratio": 0.36, "energy_normalized": 0.76},
            "sms_vwq": {"row_buffer_hit_ratio": 0.44, "energy_normalized": 0.72},
            "bump": {"row_buffer_hit_ratio": 0.55, "energy_normalized": 0.66},
            "ideal": {"row_buffer_hit_ratio": 0.77, "energy_normalized": 0.55},
        }
        suite = validate_headline_results(summary)
        assert suite.passed, suite.render()

    def test_validate_headline_results_flags_broken_ordering(self):
        summary = {
            "base_close": {"row_buffer_hit_ratio": 0.10, "energy_normalized": 1.00},
            "base_open": {"row_buffer_hit_ratio": 0.50, "energy_normalized": 0.86},
            "sms": {"row_buffer_hit_ratio": 0.30, "energy_normalized": 0.90},
            "vwq": {"row_buffer_hit_ratio": 0.36, "energy_normalized": 0.95},
            "sms_vwq": {"row_buffer_hit_ratio": 0.44, "energy_normalized": 0.99},
            "bump": {"row_buffer_hit_ratio": 0.45, "energy_normalized": 1.00},
            "ideal": {"row_buffer_hit_ratio": 0.77, "energy_normalized": 0.55},
        }
        suite = validate_headline_results(summary)
        assert not suite.passed
