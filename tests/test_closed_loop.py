"""Closed-loop traffic: the feedback controller and its determinism envelope.

The properties that make a feedback-driven run usable for measurement (all
also sampled continuously by the fuzz oracle):

* one seed fixes the whole run -- rerunning reproduces the result
  fingerprint and the entire intensity trajectory bit for bit;
* the streaming chunk size is invisible: control updates land at fixed
  access-count boundaries, so any chunk size yields the identical run;
* every engine cell (cache x DRAM x interpreter) agrees;
* telemetry is an observer, and the intensity gauge actually records the
  controller's trajectory;
* a warm-state snapshot taken mid-run carries the controller state, so the
  restored tail is bit-identical to never having stopped;
* the warmup-boundary split (one code path for all sources after the
  ``_cross_warmup_boundary`` dedup) behaves identically whether or not the
  boundary lands mid-chunk.
"""

import numpy as np
import pytest

from repro.exec.campaign import result_fingerprint
from repro.scenario import (
    ClosedLoopSource,
    ClosedLoopSpec,
    Phase,
    Scenario,
    TenantAssignment,
    run_scenario,
)
from repro.scenario.closed_loop import as_closed_loop_spec
from repro.sim.config import base_open, bump_system
from repro.sim.snapshot import capture_warmup, load_snapshot, save_snapshot
from repro.sim.system import ServerSystem
from repro.telemetry import TelemetryRecorder
from repro.trace.source import FeedbackSample


def small_scenario(accesses=2400, num_cores=4):
    return Scenario(
        name="closed-loop-test",
        description="two tenants for controller tests",
        phases=[Phase("only", accesses, [
            TenantAssignment("web_search", (0, 1)),
            TenantAssignment("online_analytics", (2, 3), intensity=1.5),
        ])],
        num_cores=num_cores,
    )


SPEC = ClosedLoopSpec(target_latency=60.0, interval=160, gain=0.5)


def run(scenario=None, spec=SPEC, chunk_size=160, warmup=0.25, **kwargs):
    scenario = scenario if scenario is not None else small_scenario()
    return run_scenario(scenario, base_open(), seed=11,
                        warmup_fraction=warmup, chunk_size=chunk_size,
                        closed_loop=spec, **kwargs)


def feedback(accesses, reads, latency):
    return FeedbackSample(accesses=accesses, core_cycle=accesses * 4.0,
                          demand_reads=reads, read_latency_cycles=latency,
                          queue_depth=0, llc_misses=reads)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClosedLoopSpec(target_latency=0.0)
        with pytest.raises(ValueError):
            ClosedLoopSpec(interval=0)
        with pytest.raises(ValueError):
            ClosedLoopSpec(gain=-0.1)
        with pytest.raises(ValueError):
            ClosedLoopSpec(min_intensity=2.0, max_intensity=1.0)
        with pytest.raises(ValueError):
            ClosedLoopSpec(initial_intensity=9.0)

    def test_dict_round_trip(self):
        spec = ClosedLoopSpec(target_latency=80.0, interval=256, gain=0.3)
        assert ClosedLoopSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unsupported closed-loop"):
            ClosedLoopSpec.from_dict({"target_latency": 60.0, "gian": 0.5})

    def test_as_closed_loop_spec_coercions(self):
        assert as_closed_loop_spec(None) is None
        assert as_closed_loop_spec(SPEC) is SPEC
        assert as_closed_loop_spec({"interval": 64}).interval == 64
        with pytest.raises(TypeError):
            as_closed_loop_spec(42)


class TestController:
    def test_throttles_under_high_latency(self):
        source = ClosedLoopSource(small_scenario(), SPEC, seed=11,
                                  chunk_size=SPEC.interval)
        source.next_chunk(None)
        source.next_chunk(feedback(160, 50, 50 * 500.0))  # 500 >> target 60
        assert source.current_intensity < SPEC.initial_intensity
        assert source.updates == 1

    def test_ramps_up_with_headroom_and_clamps(self):
        source = ClosedLoopSource(small_scenario(), SPEC, seed=11,
                                  chunk_size=SPEC.interval)
        reads, latency = 0, 0.0
        for boundary in range(1, 12):
            reads += 40
            latency += 40 * 5.0  # 5 cycles << target 60: always speed up
            if source.next_chunk(feedback(boundary * 160, reads, latency)) is None:
                break
        assert source.current_intensity == SPEC.max_intensity

    def test_holds_on_counter_reset_or_idle_interval(self):
        source = ClosedLoopSource(small_scenario(), SPEC, seed=11,
                                  chunk_size=SPEC.interval)
        source.next_chunk(None)
        source.next_chunk(feedback(160, 50, 50 * 500.0))
        throttled = source.current_intensity
        # Warmup reset: cumulative counters go backwards -> deterministic hold.
        source.next_chunk(feedback(320, 10, 100.0))
        assert source.current_intensity == throttled
        assert source.updates == 1

    def test_history_records_the_trajectory(self):
        source = ClosedLoopSource(small_scenario(), SPEC, seed=11,
                                  chunk_size=SPEC.interval)
        source.next_chunk(None)
        source.next_chunk(feedback(160, 50, 50 * 500.0))
        history = source.history
        assert history[0] == (0, SPEC.initial_intensity, None)
        position, intensity, observed = history[1]
        assert position == 160
        assert intensity == source.current_intensity
        assert observed == pytest.approx(500.0)

    def test_chunks_never_straddle_a_control_boundary(self):
        source = ClosedLoopSource(small_scenario(), SPEC, seed=11,
                                  chunk_size=999)  # deliberately unaligned
        position = 0
        while True:
            chunk = source.next_chunk(None)
            if chunk is None:
                break
            start_interval = position // SPEC.interval
            position += len(chunk)
            assert (position - 1) // SPEC.interval == start_interval


class TestDeterminismEnvelope:
    def test_rerun_is_bit_identical_with_identical_trajectory(self):
        first_source = ClosedLoopSource(small_scenario(), SPEC, seed=11,
                                        chunk_size=160)
        first = run(spec=first_source)
        second_source = ClosedLoopSource(small_scenario(), SPEC, seed=11,
                                         chunk_size=160)
        second = run(spec=second_source)
        assert result_fingerprint(first) == result_fingerprint(second)
        assert first_source.history == second_source.history
        assert first_source.updates > 0  # the controller actually acted

    def test_seed_changes_the_run(self):
        base = run()
        reseeded = run_scenario(small_scenario(), base_open(), seed=12,
                                warmup_fraction=0.25, chunk_size=160,
                                closed_loop=SPEC)
        assert result_fingerprint(base) != result_fingerprint(reseeded)

    @pytest.mark.parametrize("chunk_size", [64, 352, 4096])
    def test_chunk_size_invariance(self, chunk_size):
        assert (result_fingerprint(run(chunk_size=chunk_size))
                == result_fingerprint(run(chunk_size=160)))

    @pytest.mark.parametrize("cache,dram,interp", [
        ("dict", "object", "scalar"),
        ("dict", "flat", "scalar"),
        ("flat", "object", "vector"),
        ("flat", "flat", "vector"),
    ])
    def test_engine_cube_is_bit_identical(self, cache, dram, interp):
        reference = run()
        cell = run(cache_engine=cache, dram_engine=dram, interp=interp)
        assert result_fingerprint(cell) == result_fingerprint(reference)

    def test_spec_and_prebuilt_source_agree(self):
        via_spec = run(spec=SPEC)
        via_source = run(spec=ClosedLoopSource(small_scenario(), SPEC,
                                               seed=11, chunk_size=160))
        assert result_fingerprint(via_spec) == result_fingerprint(via_source)


class TestTelemetry:
    def test_full_telemetry_is_bit_identical_to_off(self):
        recorder = TelemetryRecorder("full")
        full = run(telemetry=recorder)
        off = run(telemetry="off")
        assert result_fingerprint(full) == result_fingerprint(off)
        assert len(recorder.timeline) >= 1

    def test_intensity_gauge_tracks_the_controller(self):
        recorder = TelemetryRecorder("chunks")
        source = ClosedLoopSource(small_scenario(), SPEC, seed=11,
                                  chunk_size=160)
        run(spec=source, telemetry=recorder)
        column = recorder.timeline.column("intensity")
        recorded = set(np.unique(column))
        trajectory = {intensity for _, intensity, _ in source.history}
        assert recorded <= trajectory
        assert len(recorded) > 1  # the gauge saw the controller move

    def test_open_loop_runs_record_unit_intensity(self):
        recorder = TelemetryRecorder("chunks")
        run_scenario(small_scenario(), base_open(), seed=11,
                     warmup_fraction=0.25, chunk_size=160,
                     telemetry=recorder)
        assert set(np.unique(recorder.timeline.column("intensity"))) == {1.0}


class TestSnapshots:
    def _warm_restore_fingerprint(self, tmp_path, chunk_size):
        scenario = small_scenario()
        warmup = int(scenario.total_accesses * 0.25)
        system = ServerSystem(base_open(), workload_name=scenario.name,
                              cache_engine="flat", dram_engine="flat")
        source = ClosedLoopSource(scenario, SPEC, seed=11,
                                  chunk_size=chunk_size)
        snapshot, _, _ = capture_warmup(system, source, warmup)
        path = tmp_path / "warm.npz"
        save_snapshot(snapshot, path)
        restored = load_snapshot(path)
        result = run_scenario(scenario, base_open(), seed=11,
                              warmup_fraction=0.25, chunk_size=chunk_size,
                              snapshot=restored, closed_loop=SPEC)
        return result_fingerprint(result)

    def test_npz_round_trip_restores_mid_run_exactly(self, tmp_path):
        uninterrupted = result_fingerprint(run())
        assert self._warm_restore_fingerprint(tmp_path, 160) == uninterrupted

    def test_restore_works_across_chunk_sizes(self, tmp_path):
        """The controller checkpoint excludes chunk size on purpose."""
        uninterrupted = result_fingerprint(run(chunk_size=352))
        assert self._warm_restore_fingerprint(tmp_path, 352) == uninterrupted

    def test_checkpoint_guard_rejects_foreign_state(self):
        source = ClosedLoopSource(small_scenario(), SPEC, seed=11)
        state = source.checkpoint_state()
        other = ClosedLoopSource(small_scenario(), SPEC, seed=12)
        with pytest.raises(ValueError, match="different"):
            other.restore_state(state)

    def test_checkpoint_state_round_trips(self):
        source = ClosedLoopSource(small_scenario(), SPEC, seed=11,
                                  chunk_size=160)
        source.next_chunk(None)
        source.next_chunk(feedback(160, 50, 50 * 500.0))
        state = source.checkpoint_state()
        clone = ClosedLoopSource(small_scenario(), SPEC, seed=11,
                                 chunk_size=160)
        clone.restore_state(state)
        assert clone.current_intensity == source.current_intensity
        assert clone.history == source.history
        left = source.next_chunk(None)
        right = clone.next_chunk(None)
        assert left == right


class TestWarmupBoundarySplit:
    """The unified split path: boundaries landing mid-chunk change nothing."""

    @pytest.mark.parametrize("closed_loop", [None, SPEC])
    def test_mid_chunk_boundary_matches_aligned_boundary(self, closed_loop):
        # 2400 accesses, warmup 600: chunk 160 splits mid-chunk (600 % 160
        # != 0), chunk 100 puts the boundary exactly on a chunk edge.
        mid = run_scenario(small_scenario(), base_open(), seed=11,
                           warmup_fraction=0.25, chunk_size=160,
                           closed_loop=closed_loop)
        aligned = run_scenario(small_scenario(), base_open(), seed=11,
                               warmup_fraction=0.25, chunk_size=100,
                               closed_loop=closed_loop)
        assert result_fingerprint(mid) == result_fingerprint(aligned)

    @pytest.mark.parametrize("closed_loop", [None, SPEC])
    def test_telemetry_sees_the_same_split(self, closed_loop):
        off = run_scenario(small_scenario(), base_open(), seed=11,
                           warmup_fraction=0.25, chunk_size=160,
                           closed_loop=closed_loop, telemetry="off")
        recorder = TelemetryRecorder("full")
        full = run_scenario(small_scenario(), base_open(), seed=11,
                            warmup_fraction=0.25, chunk_size=160,
                            closed_loop=closed_loop, telemetry=recorder)
        assert result_fingerprint(off) == result_fingerprint(full)


class TestConfigSensitivity:
    def test_different_systems_produce_different_closed_loop_runs(self):
        base = run()
        bump = run_scenario(small_scenario(), bump_system(), seed=11,
                            warmup_fraction=0.25, chunk_size=160,
                            closed_loop=SPEC)
        assert result_fingerprint(base) != result_fingerprint(bump)
