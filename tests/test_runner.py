"""Unit tests for the experiment runner (trace cache, config sweeps)."""

import pytest

from repro.common.params import CacheParams, SystemParams
from repro.sim.config import base_open, named_configs
from repro.sim.runner import (
    TRACE_CACHE_MAX_ENTRIES,
    build_trace,
    clear_trace_cache,
    run_configs,
    run_named_configs,
    run_workload,
    trace_cache_info,
)
from repro.workloads.catalog import get_workload

SMALL = SystemParams().scaled(
    llc=CacheParams(size_bytes=256 * 1024, associativity=16, hit_latency_cycles=8)
)


@pytest.fixture(autouse=True)
def _clean_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


def test_build_trace_caches_identical_requests():
    first = build_trace("web_search", 2000, num_cores=4, seed=1)
    second = build_trace("web_search", 2000, num_cores=4, seed=1)
    assert first is second
    third = build_trace("web_search", 2000, num_cores=4, seed=2)
    assert third is not first


def test_cache_key_fingerprints_spec_parameters_not_just_name():
    """Two specs sharing a name but differing in any knob never share a trace."""
    spec = get_workload("web_search")
    tweaked = spec.with_overrides(coarse_job_fraction=0.9)
    assert tweaked.name == spec.name
    base = build_trace(spec, 1000, num_cores=2, seed=1)
    other = build_trace(tweaked, 1000, num_cores=2, seed=1)
    assert other is not base
    assert [a.address for a in other] != [a.address for a in base]
    # Both entries coexist in the cache and keep serving their own trace.
    assert build_trace(spec, 1000, num_cores=2, seed=1) is base
    assert build_trace(tweaked, 1000, num_cores=2, seed=1) is other


def test_cache_hit_for_field_identical_spec_copies():
    """An identical-content copy (with_overrides()) hits the same entry."""
    spec = get_workload("web_search")
    first = build_trace(spec, 1000, num_cores=2, seed=1)
    assert build_trace(spec.with_overrides(), 1000, num_cores=2, seed=1) is first
    assert trace_cache_info()["entries"] == 1


def test_build_trace_can_bypass_cache():
    first = build_trace("web_search", 1000, num_cores=2, seed=1, use_cache=False)
    second = build_trace("web_search", 1000, num_cores=2, seed=1, use_cache=False)
    assert first is not second
    assert [a.address for a in first] == [a.address for a in second]


def test_trace_cache_is_bounded_by_lru_eviction():
    for seed in range(TRACE_CACHE_MAX_ENTRIES + 3):
        build_trace("web_search", 200, num_cores=2, seed=seed)
    info = trace_cache_info()
    assert info["capacity"] == TRACE_CACHE_MAX_ENTRIES
    assert info["entries"] == TRACE_CACHE_MAX_ENTRIES
    # The oldest seeds were evicted; rebuilding one yields a fresh list.
    oldest = build_trace("web_search", 200, num_cores=2, seed=0)
    again = build_trace("web_search", 200, num_cores=2, seed=0)
    assert oldest is again  # re-cached after the rebuild


def test_trace_cache_recency_is_refreshed_on_hit():
    first = build_trace("web_search", 200, num_cores=2, seed=0)
    for seed in range(1, TRACE_CACHE_MAX_ENTRIES):
        build_trace("web_search", 200, num_cores=2, seed=seed)
    # Touch seed 0 so it is the most recently used, then overflow the cache.
    assert build_trace("web_search", 200, num_cores=2, seed=0) is first
    build_trace("web_search", 200, num_cores=2, seed=TRACE_CACHE_MAX_ENTRIES)
    assert build_trace("web_search", 200, num_cores=2, seed=0) is first


def test_clear_trace_cache_resets_occupancy():
    build_trace("web_search", 200, num_cores=2, seed=1)
    assert trace_cache_info()["entries"] == 1
    clear_trace_cache()
    assert trace_cache_info()["entries"] == 0


def test_run_workload_accepts_spec_and_name():
    config = base_open().with_overrides(system=SMALL)
    by_name = run_workload("web_search", config, num_accesses=4000,
                           warmup_fraction=0.25)
    by_spec = run_workload(get_workload("web_search"), config, num_accesses=4000,
                           warmup_fraction=0.25)
    assert by_name.workload == by_spec.workload == "web_search"
    assert by_name.total_dram_accesses == by_spec.total_dram_accesses


def test_run_configs_shares_one_trace_across_systems():
    configs = [cfg.with_overrides(system=SMALL)
               for cfg in named_configs(["base_open", "bump"]).values()]
    results = run_configs("media_streaming", configs, num_accesses=5000,
                          warmup_fraction=0.2)
    assert set(results) == {"base_open", "bump"}
    # Identical demand-side work: the number of processor accesses observed
    # by both systems must match exactly.
    assert (results["base_open"].counters["accesses"]
            == results["bump"].counters["accesses"])


def test_run_named_configs_rejects_unknown_names():
    with pytest.raises(KeyError):
        run_named_configs("web_search", ["warp_drive"], num_accesses=1000)


class TestTraceCacheAliasing:
    """Cached buffers are shared by reference; they must be immutable."""

    def test_cached_trace_columns_are_read_only(self):
        trace = build_trace("web_search", 500, num_cores=2, seed=1)
        import numpy as np

        for column in (trace.core, trace.pc, trace.address, trace.is_store,
                       trace.instructions):
            assert not column.flags.writeable
            with pytest.raises(ValueError):
                column[0] = 0

    def test_mutation_attempt_cannot_corrupt_later_cache_hits(self):
        first = build_trace("web_search", 500, num_cores=2, seed=1)
        original = first.address.copy()
        with pytest.raises(ValueError):
            first.address[:] = 0
        second = build_trace("web_search", 500, num_cores=2, seed=1)
        assert second is first
        import numpy as np

        assert np.array_equal(second.address, original)

    def test_uncached_traces_stay_writable(self):
        trace = build_trace("web_search", 500, num_cores=2, seed=1,
                            use_cache=False)
        assert trace.address.flags.writeable
        trace.address[0] = 0  # must not raise

    def test_read_only_trace_still_simulates(self):
        build_trace("web_search", 1000, num_cores=4, seed=3)  # freeze in cache
        result = run_workload("web_search", base_open(), num_accesses=1000,
                              num_cores=4, seed=3, warmup_fraction=0.0)
        assert result.counters["accesses"] == 1000


class TestTraceCacheCounters:
    def test_info_reports_hits_misses_and_derived_ratio(self):
        info = trace_cache_info()
        assert info["hits"] == 0
        assert info["misses"] == 0
        assert info["hit_ratio"] == 0.0  # no lookups yet, no division
        build_trace("web_search", 2000)
        build_trace("web_search", 2000)
        build_trace("web_serving", 2000)
        info = trace_cache_info()
        assert info["misses"] == 2
        assert info["hits"] == 1
        assert info["hit_ratio"] == pytest.approx(1 / 3)

    def test_cache_bypass_does_not_count_as_a_lookup(self):
        build_trace("web_search", 2000, use_cache=False)
        info = trace_cache_info()
        assert info["hits"] == 0
        assert info["misses"] == 0

    def test_clear_resets_the_counters(self):
        build_trace("web_search", 2000)
        build_trace("web_search", 2000)
        clear_trace_cache()
        info = trace_cache_info()
        assert info["hits"] == 0
        assert info["misses"] == 0
        assert info["entries"] == 0
