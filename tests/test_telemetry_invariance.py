"""Telemetry must be purely observational.

A run with ``telemetry="full"`` produces a :class:`SimulationResult` whose
content fingerprint is bit-identical to the same run with telemetry off --
across every workload, every named system configuration, both cache
engines, both DRAM engines, the streaming path and the scenario runner.
This is the invariant that keeps the artifact store sound (fingerprints
cover every result field) and is additionally gated in CI by
``benchmarks/bench_telemetry.py``.
"""

import pytest

from repro.exec.campaign import result_fingerprint
from repro.scenario import get_scenario, run_scenario
from repro.sim.config import base_open, bump_system, named_configs
from repro.sim.runner import build_trace, run_trace, run_workload_streaming
from repro.telemetry import TelemetryRecorder
from repro.workloads import WORKLOADS

ACCESSES = 2500
CONFIGS = sorted(named_configs())


def _digests(trace, config, **kwargs):
    off = run_trace(trace, config, telemetry="off", **kwargs)
    recorder = TelemetryRecorder("full")
    full = run_trace(trace, config, telemetry=recorder, **kwargs)
    assert len(recorder.timeline) >= 1  # telemetry actually recorded
    return result_fingerprint(off), result_fingerprint(full)


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("config_name", CONFIGS)
def test_full_is_bit_identical_to_off(workload, config_name):
    trace = build_trace(workload, ACCESSES)
    config = named_configs()[config_name]
    off, full = _digests(trace, config)
    assert off == full


@pytest.mark.parametrize("cache_engine", ["flat", "dict"])
@pytest.mark.parametrize("dram_engine", ["flat", "object"])
def test_invariance_holds_on_every_engine_combination(cache_engine, dram_engine):
    trace = build_trace("web_search", ACCESSES)
    off, full = _digests(trace, bump_system(),
                         cache_engine=cache_engine, dram_engine=dram_engine)
    assert off == full


@pytest.mark.parametrize("interp", ["vector", "scalar"])
def test_invariance_holds_under_both_interpreters(interp):
    trace = build_trace("web_search", ACCESSES)
    off, full = _digests(trace, bump_system(), interp=interp)
    assert off == full


def test_invariance_holds_for_streaming_runs():
    kwargs = dict(num_accesses=4000, chunk_size=1000)
    off = run_workload_streaming("media_streaming", base_open(),
                                 telemetry="off", **kwargs)
    recorder = TelemetryRecorder("full")
    full = run_workload_streaming("media_streaming", base_open(),
                                  telemetry=recorder, **kwargs)
    assert len(recorder.timeline) >= 4
    assert result_fingerprint(off) == result_fingerprint(full)


def test_invariance_holds_for_scenarios_and_phases_are_marked():
    scenario = get_scenario("phase-change", scale=0.01)
    off = run_scenario(scenario, bump_system(), telemetry="off")
    recorder = TelemetryRecorder("full")
    full = run_scenario(scenario, bump_system(), telemetry=recorder)
    assert result_fingerprint(off) == result_fingerprint(full)
    phases = [e for e in recorder.events()
              if e["event"] == "mark" and e["name"] == "phase"]
    assert [m["fields"]["phase"] for m in phases] == \
        [phase.name for phase in scenario.phases]
    boundaries = [m["fields"]["accesses"] for m in phases]
    assert boundaries == sorted(boundaries)
    assert boundaries[-1] == scenario.total_accesses


def test_chunks_and_spans_modes_are_also_invariant():
    trace = build_trace("online_analytics", ACCESSES)
    baseline = result_fingerprint(run_trace(trace, bump_system(),
                                            telemetry="off"))
    for mode in ("chunks", "spans"):
        observed = run_trace(trace, bump_system(),
                             telemetry=TelemetryRecorder(mode))
        assert result_fingerprint(observed) == baseline
