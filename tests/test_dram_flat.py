"""Unit and property tests for the flat-array DRAM engine.

The contract of :class:`repro.dram.flat.FlatMemorySystem` is bit-identity
with the object engine (:class:`repro.dram.system.MemorySystem`) over any
request stream, for both page policies and both interleaving schemes.  The
end-to-end engine parity suite (test_dram_engine_parity.py) covers whole
simulations; the tests here drive the memory system directly so failures
localize to the engine rather than the simulator.
"""

import numpy as np
import pytest

from repro.common.params import DDR3Timing, DRAMOrganization, SystemParams
from repro.common.request import DRAMRequest, DRAMRequestKind
from repro.dram.address_mapping import (
    make_block_interleaving,
    make_region_interleaving,
)
from repro.dram.controller import PagePolicy
from repro.dram.engine import dram_engine_name, resolve_dram_engine
from repro.dram.flat import FlatMemorySystem
from repro.dram.system import MemorySystem

KINDS = list(DRAMRequestKind)


def _params():
    return SystemParams()


def _systems(mapping_factory=make_region_interleaving,
             policy=PagePolicy.OPEN):
    params = _params()
    org = params.dram_org
    timing = params.dram_timing
    mapping = mapping_factory(org, org.row_buffer_bytes)
    window = org.transaction_queue_entries
    obj = MemorySystem(timing, org, mapping, policy, window=window,
                       fast_scheduler=True, record_completed=False)
    flat = FlatMemorySystem(timing, org, mapping, policy, window=window)
    return obj, flat


def _random_stream(n, seed=0, region_runs=True):
    """(blocks, kind codes, arrivals): a mix of random and same-region runs."""
    rng = np.random.default_rng(seed)
    if region_runs:
        base = rng.integers(0, 1 << 20, (n + 3) // 4).astype(np.int64)
        blocks = (np.repeat(base, 4)[:n]
                  + np.tile(np.arange(4, dtype=np.int64), (n + 3) // 4)[:n])
    else:
        blocks = rng.integers(0, 1 << 24, n).astype(np.int64)
    blocks = blocks << 6
    kinds = rng.choice(len(KINDS), size=n,
                       p=[0.45, 0.1, 0.1, 0.25, 0.05, 0.05]).astype(np.int64)
    arrivals = np.cumsum(rng.random(n) * 1.5)
    return blocks, kinds, arrivals


def _feed_object(system, blocks, kinds, arrivals):
    for block, kind, arrival in zip(blocks.tolist(), kinds.tolist(),
                                    arrivals.tolist()):
        system.enqueue(DRAMRequest(block_address=block, kind=KINDS[kind],
                                   arrival_cycle=arrival))
    system.drain()


GEOMETRIES = [
    (make_region_interleaving, PagePolicy.OPEN),
    (make_region_interleaving, PagePolicy.CLOSE),
    (make_block_interleaving, PagePolicy.OPEN),
    (make_block_interleaving, PagePolicy.CLOSE),
]


class TestBitIdentity:
    @pytest.mark.parametrize("mapping_factory,policy", GEOMETRIES)
    def test_stats_identical_over_mixed_stream(self, mapping_factory, policy):
        obj, flat = _systems(mapping_factory, policy)
        blocks, kinds, arrivals = _random_stream(20_000, seed=3)
        _feed_object(obj, blocks, kinds, arrivals)
        flat.enqueue_block_batch(blocks, kinds, arrivals)
        flat.drain()
        assert flat.aggregate_stats().snapshot() == obj.aggregate_stats().snapshot()
        assert flat.elapsed_cycles == obj.elapsed_cycles
        assert flat.bandwidth_bound_cycles == obj.bandwidth_bound_cycles
        assert flat.traffic_by_kind() == obj.traffic_by_kind()

    def test_batch_boundaries_are_invisible(self):
        """Splitting a stream into arbitrary batches changes nothing."""
        blocks, kinds, arrivals = _random_stream(12_000, seed=11)
        _, one_shot = _systems()
        one_shot.enqueue_block_batch(blocks, kinds, arrivals)
        one_shot.drain()
        reference = one_shot.aggregate_stats().snapshot()
        for batch in (1, 7, 63, 64, 65, 4096):
            _, chunked = _systems()
            for start in range(0, len(blocks), batch):
                chunked.enqueue_block_batch(blocks[start:start + batch],
                                            kinds[start:start + batch],
                                            arrivals[start:start + batch])
            chunked.drain()
            assert chunked.aggregate_stats().snapshot() == reference, batch

    def test_scalar_enqueue_matches_batch(self):
        blocks, kinds, arrivals = _random_stream(3_000, seed=5)
        _, batched = _systems()
        batched.enqueue_block_batch(blocks, kinds, arrivals)
        batched.drain()
        _, scalar = _systems()
        for block, kind, arrival in zip(blocks.tolist(), kinds.tolist(),
                                        arrivals.tolist()):
            scalar.enqueue(DRAMRequest(block_address=block, kind=KINDS[kind],
                                       arrival_cycle=arrival))
        scalar.drain()
        assert (scalar.aggregate_stats().snapshot()
                == batched.aggregate_stats().snapshot())

    def test_per_channel_stats_match_controllers(self):
        obj, flat = _systems()
        blocks, kinds, arrivals = _random_stream(8_000, seed=9)
        _feed_object(obj, blocks, kinds, arrivals)
        flat.enqueue_block_batch(blocks, kinds, arrivals)
        flat.drain()
        assert len(flat.controllers) == len(obj.controllers)
        for view, controller in zip(flat.controllers, obj.controllers):
            assert view.stats.snapshot() == controller.stats.snapshot()
            assert view.last_completion_cycle == controller.last_completion_cycle
            assert not view._completed

    def test_drain_is_idempotent_and_returns_nothing(self):
        _, flat = _systems()
        blocks, kinds, arrivals = _random_stream(500, seed=1)
        flat.enqueue_block_batch(blocks, kinds, arrivals)
        assert flat.drain() == []
        first = flat.aggregate_stats().snapshot()
        assert flat.drain() == []
        assert flat.aggregate_stats().snapshot() == first
        assert flat.pending_count() == 0


class TestRingBuffer:
    def test_compaction_preserves_order_over_long_streams(self):
        """Streams far beyond the compaction threshold stay bit-identical."""
        obj, flat = _systems()
        blocks, kinds, arrivals = _random_stream(60_000, seed=21,
                                                 region_runs=False)
        _feed_object(obj, blocks, kinds, arrivals)
        for start in range(0, len(blocks), 1000):
            flat.enqueue_block_batch(blocks[start:start + 1000],
                                     kinds[start:start + 1000],
                                     arrivals[start:start + 1000])
        flat.drain()
        assert flat.aggregate_stats().snapshot() == obj.aggregate_stats().snapshot()

    def test_queue_stays_bounded_during_batches(self):
        """Eager draining keeps each channel under twice the window."""
        _, flat = _systems()
        blocks, kinds, arrivals = _random_stream(10_000, seed=2)
        flat.enqueue_block_batch(blocks, kinds, arrivals)
        bound = 2 * flat.window * len(flat.controllers)
        assert flat.pending_count() <= bound


class TestCounters:
    def test_reset_counters_preserves_architectural_state(self):
        obj, flat = _systems()
        blocks, kinds, arrivals = _random_stream(6_000, seed=13)
        half = len(blocks) // 2
        _feed_object(obj, blocks[:half], kinds[:half], arrivals[:half])
        flat.enqueue_block_batch(blocks[:half], kinds[:half], arrivals[:half])
        flat.drain()
        for controller in obj.controllers:
            controller.reset_counters()
        for view in flat.controllers:
            view.reset_counters()
        assert flat.aggregate_stats().snapshot() == obj.aggregate_stats().snapshot()
        _feed_object(obj, blocks[half:], kinds[half:], arrivals[half:])
        flat.enqueue_block_batch(blocks[half:], kinds[half:], arrivals[half:])
        flat.drain()
        # Post-warmup measurements still identical: row-buffer and bank
        # timing state survived the reset on both engines.
        assert flat.aggregate_stats().snapshot() == obj.aggregate_stats().snapshot()

    def test_channel_of_matches_object_engine(self):
        obj, flat = _systems()
        blocks, _, _ = _random_stream(1_000, seed=17)
        for block in blocks.tolist():
            assert flat.channel_of(block) == obj.channel_of(block)


class TestEngineResolution:
    def test_default_engine_is_flat(self, monkeypatch):
        monkeypatch.delenv("REPRO_DRAM_ENGINE", raising=False)
        assert dram_engine_name() == "flat"

    def test_env_and_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_DRAM_ENGINE", "object")
        assert dram_engine_name() == "object"
        assert dram_engine_name("flat") == "flat"

    def test_unknown_engine_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown DRAM engine"):
            dram_engine_name("fast")

    def test_non_frfcfs_scheduler_falls_back_to_object(self):
        assert resolve_dram_engine("flat", scheduler="fcfs") == "object"
        assert resolve_dram_engine("flat", scheduler="frfcfs") == "flat"

    def test_oversized_organisation_falls_back_to_object(self):
        org = DRAMOrganization()
        assert resolve_dram_engine("flat", org=org) == "flat"
        # Counts of exactly 64 still pack (indices 0..63 fit 6 bits).
        boundary = DRAMOrganization(banks_per_rank=64)
        assert resolve_dram_engine("flat", org=boundary) == "flat"
        big = DRAMOrganization(banks_per_rank=128)
        assert resolve_dram_engine("flat", org=big) == "object"

    def test_flat_system_accepts_boundary_organisation(self):
        org = DRAMOrganization(banks_per_rank=64)
        mapping = make_region_interleaving(org, org.row_buffer_bytes)
        assert FlatMemorySystem(DDR3Timing(), org, mapping) is not None

    def test_flat_system_rejects_oversized_organisation(self):
        org = DRAMOrganization(banks_per_rank=128)
        mapping = make_region_interleaving(org, org.row_buffer_bytes)
        with pytest.raises(ValueError, match="packs"):
            FlatMemorySystem(DDR3Timing(), org, mapping)

    def test_flat_system_rejects_empty_window(self):
        params = _params()
        mapping = make_region_interleaving(params.dram_org,
                                           params.dram_org.row_buffer_bytes)
        with pytest.raises(ValueError, match="window"):
            FlatMemorySystem(params.dram_timing, params.dram_org, mapping,
                             window=0)
