"""Unit tests for the generic set-associative cache model."""

import pytest

from repro.cache.replacement import LRUPolicy, RandomPolicy, make_policy
from repro.cache.set_assoc import SetAssociativeCache
from repro.common.params import CacheParams


def small_cache(size=4 * 1024, assoc=4):
    return SetAssociativeCache(CacheParams(size_bytes=size, associativity=assoc))


def test_miss_then_fill_then_hit():
    cache = small_cache()
    assert cache.access(0x1000) is None
    assert cache.fill(0x1000) is None
    line = cache.access(0x1000)
    assert line is not None
    assert not line.dirty


def test_write_access_sets_dirty():
    cache = small_cache()
    cache.fill(0x40)
    cache.access(0x40, is_write=True)
    assert cache.lookup(0x40).dirty


def test_fill_dirty_flag_persists():
    cache = small_cache()
    cache.fill(0x80, dirty=True)
    assert cache.lookup(0x80).dirty


def test_refill_merges_dirty_and_does_not_evict():
    cache = small_cache()
    cache.fill(0x80, dirty=True)
    victim = cache.fill(0x80, dirty=False)
    assert victim is None
    assert cache.lookup(0x80).dirty


def test_eviction_of_lru_line_within_set():
    # 4-way cache: the fifth block mapping to the same set evicts the LRU one.
    cache = small_cache()
    set_stride = cache.num_sets * 64
    blocks = [i * set_stride for i in range(5)]
    for block in blocks[:4]:
        cache.fill(block)
    cache.access(blocks[0])  # promote block 0
    victim = cache.fill(blocks[4])
    assert victim is not None
    assert victim.block_address == blocks[1]
    assert cache.contains(blocks[0])


def test_dirty_victim_reports_dirty():
    cache = small_cache()
    set_stride = cache.num_sets * 64
    for i in range(4):
        cache.fill(i * set_stride, dirty=(i == 0))
    victim = cache.fill(4 * set_stride)
    assert victim.dirty
    assert cache.stats["dirty_evictions"] == 1


def test_prefetched_line_becomes_used_on_access():
    cache = small_cache()
    cache.fill(0x100, prefetched=True)
    line = cache.lookup(0x100)
    assert line.prefetched and not line.used
    cache.access(0x100)
    assert cache.lookup(0x100).used
    assert cache.stats["prefetch_hits"] == 1


def test_unused_prefetch_eviction_is_counted():
    cache = small_cache()
    set_stride = cache.num_sets * 64
    cache.fill(0, prefetched=True)
    for i in range(1, 5):
        cache.fill(i * set_stride)
    assert cache.stats["unused_prefetch_evictions"] == 1


def test_invalidate_removes_line():
    cache = small_cache()
    cache.fill(0x200)
    assert cache.invalidate(0x200) is not None
    assert not cache.contains(0x200)
    assert cache.invalidate(0x200) is None


def test_clean_clears_dirty_only_when_dirty():
    cache = small_cache()
    cache.fill(0x300, dirty=True)
    assert cache.clean(0x300) is True
    assert cache.clean(0x300) is False
    assert not cache.lookup(0x300).dirty


def test_resident_blocks_in_region():
    cache = small_cache()
    cache.fill(1024)
    cache.fill(1024 + 128, dirty=True)
    lines = cache.resident_blocks_in_region(1024, 1024)
    assert {line.block_address for line in lines} == {1024, 1024 + 128}


def test_resident_count_and_hit_ratio():
    cache = small_cache()
    assert cache.resident_count() == 0
    cache.fill(0)
    cache.access(0)
    cache.access(64)
    assert cache.resident_count() == 1
    assert cache.hit_ratio == pytest.approx(0.5)


def test_capacity_never_exceeded():
    cache = small_cache(size=1024, assoc=2)
    for i in range(200):
        cache.fill(i * 64)
    assert cache.resident_count() <= cache.params.num_blocks


def test_replacement_policy_factory():
    assert isinstance(make_policy("lru"), LRUPolicy)
    assert isinstance(make_policy("random", seed=3), RandomPolicy)
    with pytest.raises(ValueError):
        make_policy("plru")


def test_random_policy_only_evicts_resident_tags():
    cache = SetAssociativeCache(
        CacheParams(size_bytes=1024, associativity=2), policy=RandomPolicy(seed=7)
    )
    for i in range(50):
        victim = cache.fill(i * 64 * cache.num_sets)
        if victim is not None:
            assert victim.block_address % 64 == 0
    assert cache.resident_count() <= 2 * cache.num_sets
