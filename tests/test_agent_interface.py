"""Unit tests for the LLC-agent interface shared by all mechanisms."""

from repro.cache.agent import AgentActions, LLCAgent
from repro.cache.set_assoc import EvictedLine
from repro.common.request import LLCRequest, LLCRequestKind


def test_default_agent_is_inert():
    agent = LLCAgent()
    request = LLCRequest(core=0, pc=0, block_address=0,
                         kind=LLCRequestKind.DEMAND_READ)
    victim = EvictedLine(block_address=0, dirty=True, prefetched=False, used=True)
    assert agent.on_access(request, hit=True).empty
    assert agent.on_miss(request).empty
    assert agent.on_fill(0, prefetched=False).empty
    assert agent.on_eviction(victim).empty
    assert agent.storage_bits() == 0


def test_actions_merge_concatenates_requests():
    first = AgentActions(fetch_blocks=[64, 128], writeback_blocks=[192])
    second = AgentActions(fetch_blocks=[256], writeback_blocks=[320, 384])
    first.merge(second)
    assert first.fetch_blocks == [64, 128, 256]
    assert first.writeback_blocks == [192, 320, 384]
    assert not first.empty


def test_actions_empty_flag():
    assert AgentActions().empty
    assert not AgentActions(fetch_blocks=[0]).empty
    assert not AgentActions(writeback_blocks=[0]).empty
