"""Tests for the related-work mechanisms added for the Section VII ablations:
next-line prefetching, Stealth-style region prefetching, age-based eager
writeback, and the extended system configurations that wire them up."""

import pytest

from repro.common.addressing import BLOCK_SIZE, REGION_SIZE
from repro.common.request import LLCRequest, LLCRequestKind
from repro.cache.set_assoc import EvictedLine
from repro.prefetch.nextline import NextLinePrefetcher
from repro.prefetch.stealth import StealthPrefetcher
from repro.sim.config import (
    bump_vwq_system,
    eager_writeback_system,
    extended_configs,
    named_configs,
    nextline_system,
    stealth_system,
)
from repro.sim.runner import build_trace, run_trace
from repro.writeback.eager import EagerWriteback


def read_request(block, pc=0x400000, core=0):
    return LLCRequest(core=core, pc=pc, block_address=block,
                      kind=LLCRequestKind.DEMAND_READ, is_store=False)


def write_request(block, pc=0x500000, core=0):
    return LLCRequest(core=core, pc=pc, block_address=block,
                      kind=LLCRequestKind.DEMAND_WRITE, is_store=True)


def evicted(block, dirty=False):
    return EvictedLine(block_address=block, dirty=dirty, prefetched=False, used=True)


class TestNextLinePrefetcher:
    def test_miss_triggers_sequential_burst(self):
        prefetcher = NextLinePrefetcher(degree=3)
        actions = prefetcher.on_miss(read_request(0x1000))
        assert actions.fetch_blocks == [0x1000 + BLOCK_SIZE,
                                        0x1000 + 2 * BLOCK_SIZE,
                                        0x1000 + 3 * BLOCK_SIZE]

    def test_access_path_is_silent_in_miss_triggered_mode(self):
        prefetcher = NextLinePrefetcher(degree=2)
        assert prefetcher.on_access(read_request(0x1000), hit=True).empty
        assert prefetcher.on_access(read_request(0x1000), hit=False).empty

    def test_hit_triggered_mode_fires_on_misses_via_access(self):
        prefetcher = NextLinePrefetcher(degree=1, miss_triggered=False)
        assert prefetcher.on_miss(read_request(0x1000)).empty
        actions = prefetcher.on_access(read_request(0x1000), hit=False)
        assert actions.fetch_blocks == [0x1000 + BLOCK_SIZE]

    def test_degree_validation_and_zero_storage(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)
        assert NextLinePrefetcher().storage_bits() == 0

    def test_stats_count_issued_prefetches(self):
        prefetcher = NextLinePrefetcher(degree=4)
        prefetcher.on_miss(read_request(0))
        prefetcher.on_miss(read_request(REGION_SIZE))
        assert prefetcher.stats["prefetches_issued"] == 8
        assert prefetcher.stats["prefetch_bursts"] == 2


class TestStealthPrefetcher:
    def region_blocks(self, base=0x40000):
        return [base + i * BLOCK_SIZE for i in range(REGION_SIZE // BLOCK_SIZE)]

    def test_does_not_stream_before_trigger_count(self):
        prefetcher = StealthPrefetcher(trigger_count=4)
        blocks = self.region_blocks()
        for block in blocks[:3]:
            assert prefetcher.on_access(read_request(block), hit=False).empty

    def test_streams_whole_region_without_history(self):
        prefetcher = StealthPrefetcher(trigger_count=2)
        blocks = self.region_blocks()
        prefetcher.on_access(read_request(blocks[0]), hit=False)
        actions = prefetcher.on_access(read_request(blocks[1]), hit=False)
        # Everything except the two already-touched blocks is requested.
        assert set(actions.fetch_blocks) == set(blocks[2:])

    def test_streams_learned_footprint_on_second_generation(self):
        prefetcher = StealthPrefetcher(trigger_count=2)
        blocks = self.region_blocks()
        footprint = blocks[:6]
        for block in footprint:
            prefetcher.on_access(read_request(block), hit=False)
        # Close the generation; the learned footprint is blocks[:6].
        prefetcher.on_eviction(evicted(blocks[0]))

        prefetcher.on_access(read_request(blocks[0]), hit=False)
        actions = prefetcher.on_access(read_request(blocks[1]), hit=False)
        assert set(actions.fetch_blocks) == set(footprint[2:])

    def test_streams_only_once_per_generation(self):
        prefetcher = StealthPrefetcher(trigger_count=2)
        blocks = self.region_blocks()
        prefetcher.on_access(read_request(blocks[0]), hit=False)
        first = prefetcher.on_access(read_request(blocks[1]), hit=False)
        second = prefetcher.on_access(read_request(blocks[2]), hit=False)
        assert first.fetch_blocks and second.empty

    def test_repeated_access_to_same_block_does_not_advance_trigger(self):
        prefetcher = StealthPrefetcher(trigger_count=2)
        block = self.region_blocks()[0]
        prefetcher.on_access(read_request(block), hit=False)
        assert prefetcher.on_access(read_request(block), hit=True).empty

    def test_storage_requirement_far_exceeds_bump(self):
        prefetcher = StealthPrefetcher()
        # Section VII: hundreds of kilobytes versus BuMP's ~14KB.
        assert prefetcher.storage_bits() / 8 / 1024 > 100

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StealthPrefetcher(trigger_count=0)
        with pytest.raises(ValueError):
            StealthPrefetcher(region_size=100)


class TestEagerWriteback:
    def test_drains_oldest_dirty_blocks_past_limit(self):
        agent = EagerWriteback(pending_limit=2, drain_batch=2)
        agent.on_access(write_request(0x0000), hit=True)
        agent.on_access(write_request(0x1000), hit=True)
        actions = agent.on_access(write_request(0x2000), hit=True)
        assert actions.writeback_blocks == [0x0000]

    def test_rewritten_block_moves_to_young_end(self):
        agent = EagerWriteback(pending_limit=2, drain_batch=1)
        agent.on_access(write_request(0x0000), hit=True)
        agent.on_access(write_request(0x1000), hit=True)
        agent.on_access(write_request(0x0000), hit=True)  # re-dirty the first
        actions = agent.on_access(write_request(0x2000), hit=True)
        assert actions.writeback_blocks == [0x1000]

    def test_reads_do_not_enqueue_candidates(self):
        agent = EagerWriteback(pending_limit=1)
        agent.on_access(read_request(0x0000), hit=True)
        agent.on_access(read_request(0x1000), hit=True)
        assert agent.tracked_dirty_blocks == 0

    def test_evicted_blocks_are_forgotten(self):
        agent = EagerWriteback(pending_limit=8)
        agent.on_access(write_request(0x0000), hit=True)
        agent.on_eviction(evicted(0x0000, dirty=True))
        assert agent.tracked_dirty_blocks == 0

    def test_drain_batch_bounds_per_access_work(self):
        agent = EagerWriteback(pending_limit=1, drain_batch=2)
        for index in range(6):
            agent.on_access(write_request(index * 0x1000), hit=True)
        # Never more than drain_batch writebacks per notification.
        actions = agent.on_access(write_request(0x7000), hit=True)
        assert len(actions.writeback_blocks) <= 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EagerWriteback(pending_limit=0)
        with pytest.raises(ValueError):
            EagerWriteback(drain_batch=0)


class TestExtendedConfigs:
    def test_paper_set_is_unchanged(self):
        assert set(named_configs()) == {
            "base_close", "base_open", "sms", "vwq", "sms_vwq",
            "full_region", "bump", "ideal",
        }

    def test_extended_names_resolve_when_listed_explicitly(self):
        configs = named_configs(["bump", "bump_vwq", "stealth"])
        assert set(configs) == {"bump", "bump_vwq", "stealth"}

    def test_extended_registry_contents(self):
        configs = extended_configs()
        assert set(configs) == {"bump_vwq", "nextline", "stealth", "eager_writeback"}
        with pytest.raises(KeyError):
            extended_configs(["flux_capacitor"])

    def test_factories_set_expected_flags(self):
        assert bump_vwq_system().use_bump and bump_vwq_system().use_vwq
        assert nextline_system().use_nextline and not nextline_system().use_stride
        assert stealth_system().use_stealth
        assert eager_writeback_system().use_eager_writeback
        assert eager_writeback_system().use_stride

    @pytest.fixture(scope="class")
    def trace(self):
        return build_trace("web_search", 8_000, seed=7)

    def test_extended_configs_run_end_to_end(self, trace):
        for name, config in extended_configs().items():
            result = run_trace(trace, config, warmup_fraction=0.25)
            assert result.total_dram_accesses > 0, name
            assert result.throughput_ipc > 0, name

    def test_bump_vwq_streams_at_least_as_many_writes_as_bump(self, trace):
        bump = run_trace(trace, named_configs(["bump"])["bump"], warmup_fraction=0.25)
        combined = run_trace(trace, bump_vwq_system(), warmup_fraction=0.25)
        assert combined.write_coverage >= bump.write_coverage * 0.9
