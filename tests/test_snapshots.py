"""Warm-state snapshot engine: capture/restore bit-identity and plumbing.

The acceptance bar for ``repro.sim.snapshot`` is absolute: restoring a
warmup snapshot and simulating the measured tail must produce the
*identical* :class:`SimulationResult` (full fingerprint, every counter and
energy figure) as an uninterrupted run -- across the cache x DRAM x
interpreter engine cube, both DRAM page policies, any chunking of the
stream, scenario mid-phase boundaries, and across process boundaries
(snapshot written by one process, restored in another).
"""

import os
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest

from repro.exec.campaign import result_fingerprint, run_campaign
from repro.exec.jobs import JobGrid
from repro.exec.store import ArtifactStore
from repro.scenario.catalog import get_scenario
from repro.scenario.runner import run_scenario
from repro.sim.config import named_configs
from repro.sim.runner import build_trace, run_trace, run_workload_streaming
from repro.sim.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    capture,
    capture_warmup,
    load_snapshot,
    restore,
    save_snapshot,
    snapshot_fingerprint,
)
from repro.sim.system import ServerSystem
from repro.telemetry.metrics import (
    reset_snapshot_counters,
    snapshot_cache_info,
)
from repro.trace.buffer import as_chunk_iterator
from repro.workloads.catalog import get_workload

ACCESSES = 4_000
CORES = 4
SEED = 7
WORKLOAD = "web_search"


@pytest.fixture(autouse=True)
def _clean_counters():
    reset_snapshot_counters()
    yield
    reset_snapshot_counters()


def _config(name="bump"):
    return named_configs([name])[name]


def _trace():
    return build_trace(WORKLOAD, ACCESSES, num_cores=CORES, seed=SEED)


def _cold(config, **engines):
    return run_trace(_trace(), config, workload_name=WORKLOAD,
                     warmup_fraction=0.5, **engines)


def _warm_twice(config, store, **engines):
    """One miss-and-capture run followed by one hit-and-restore run."""
    key = snapshot_fingerprint(
        get_workload(WORKLOAD), config, ACCESSES // 2,
        num_cores=CORES, seed=SEED,
        cache_engine=engines.get("cache_engine"),
        dram_engine=engines.get("dram_engine"))
    first = run_trace(_trace(), config, workload_name=WORKLOAD,
                      warmup_fraction=0.5, warmup_snapshot=store,
                      snapshot_key=key, **engines)
    second = run_trace(_trace(), config, workload_name=WORKLOAD,
                       warmup_fraction=0.5, warmup_snapshot=store,
                       snapshot_key=key, **engines)
    return first, second


class TestEngineCube:
    @pytest.mark.parametrize("cache_engine", ["flat", "dict"])
    @pytest.mark.parametrize("dram_engine", ["flat", "object"])
    @pytest.mark.parametrize("interp", ["vector", "scalar"])
    def test_capture_restore_bit_identical(self, tmp_path, cache_engine,
                                           dram_engine, interp):
        config = _config()
        engines = dict(cache_engine=cache_engine, dram_engine=dram_engine,
                       interp=interp)
        cold = _cold(config, **engines)
        captured, restored = _warm_twice(config, ArtifactStore(tmp_path),
                                         **engines)
        assert result_fingerprint(cold) == result_fingerprint(captured), (
            f"{cache_engine}/{dram_engine}/{interp}: capture run diverged")
        assert result_fingerprint(cold) == result_fingerprint(restored), (
            f"{cache_engine}/{dram_engine}/{interp}: restored run diverged")

    def test_restore_interp_is_free_choice(self, tmp_path):
        """The interpreter is not part of the snapshot: capture under the
        vector interpreter, restore under the scalar one, same result."""
        config = _config()
        store = ArtifactStore(tmp_path)
        key = snapshot_fingerprint(get_workload(WORKLOAD), config,
                                   ACCESSES // 2, num_cores=CORES, seed=SEED)
        run_trace(_trace(), config, workload_name=WORKLOAD,
                  warmup_fraction=0.5, warmup_snapshot=store,
                  snapshot_key=key, interp="vector")
        restored = run_trace(_trace(), config, workload_name=WORKLOAD,
                             warmup_fraction=0.5, warmup_snapshot=store,
                             snapshot_key=key, interp="scalar")
        cold = _cold(config, interp="scalar")
        assert result_fingerprint(cold) == result_fingerprint(restored)


class TestPagePolicies:
    @pytest.mark.parametrize("system", ["base_open", "base_close"])
    def test_both_page_policies(self, tmp_path, system):
        config = _config(system)
        cold = _cold(config)
        captured, restored = _warm_twice(config, ArtifactStore(tmp_path))
        assert result_fingerprint(cold) == result_fingerprint(captured)
        assert result_fingerprint(cold) == result_fingerprint(restored)


class TestScenarios:
    SCALE = 0.01

    def test_mid_phase_warmup_boundary(self, tmp_path):
        """A warmup fraction that lands inside a scenario phase restores
        bit-identically (the boundary splits a phase, not just a chunk)."""
        scenario = get_scenario("phase-change", scale=self.SCALE)
        config = _config()
        store = ArtifactStore(tmp_path)
        cold = run_scenario(scenario, config, seed=SEED, warmup_fraction=0.4)
        captured = run_scenario(scenario, config, seed=SEED,
                                warmup_fraction=0.4, warmup_snapshot=store)
        restored = run_scenario(scenario, config, seed=SEED,
                                warmup_fraction=0.4, warmup_snapshot=store)
        assert result_fingerprint(cold) == result_fingerprint(captured)
        assert result_fingerprint(cold) == result_fingerprint(restored)

    def test_chunk_size_variation(self, tmp_path):
        """The snapshot key excludes the chunk size: a snapshot captured
        under one chunking restores into a differently chunked stream."""
        scenario = get_scenario("tenant-colocation", scale=self.SCALE)
        config = _config()
        store = ArtifactStore(tmp_path)
        cold = run_scenario(scenario, config, seed=SEED, chunk_size=4096)
        run_scenario(scenario, config, seed=SEED, chunk_size=1000,
                     warmup_snapshot=store)
        restored = run_scenario(scenario, config, seed=SEED, chunk_size=4096,
                                warmup_snapshot=store)
        assert snapshot_cache_info()["hits"] == 1
        assert result_fingerprint(cold) == result_fingerprint(restored)


class TestDirectCaptureRestore:
    def test_mid_run_capture_continues_identically(self):
        """capture()/restore() at an arbitrary warmup boundary (not aligned
        to any chunk) continues bit-identically to an uninterrupted run."""
        config = _config()
        trace = _trace()
        warmup = 1_234
        uninterrupted = run_trace(trace, config, workload_name=WORKLOAD,
                                  num_accesses=ACCESSES,
                                  warmup_fraction=warmup / ACCESSES)

        system = ServerSystem(config, workload_name=WORKLOAD)
        snapshot, leftover, chunk_iter = capture_warmup(
            system, trace, warmup)
        assert snapshot.processed == warmup

        resumed = restore(snapshot)

        def tail():
            if leftover is not None and len(leftover):
                yield leftover
            yield from chunk_iter

        result = resumed.run(tail(), warmup_accesses=0)
        assert result_fingerprint(uninterrupted) == result_fingerprint(result)

    def test_extra_agents_rejected(self):
        config = _config()
        system = ServerSystem(config, workload_name=WORKLOAD)
        system.agents = system.agents + [object()]
        with pytest.raises(ValueError, match="extra_agents"):
            capture(system, processed=0)


class TestSerialization:
    def test_file_round_trip(self, tmp_path):
        config = _config()
        system = ServerSystem(config, workload_name=WORKLOAD)
        snapshot, _, _ = capture_warmup(system, _trace(), 2_000)
        path = tmp_path / "snap.npz"
        save_snapshot(snapshot, path)
        loaded = load_snapshot(path)
        assert loaded.format_version == SNAPSHOT_FORMAT_VERSION
        assert loaded.workload_name == snapshot.workload_name
        assert loaded.processed == snapshot.processed
        assert loaded.config_key == snapshot.config_key
        assert loaded.state_blob == snapshot.state_blob
        assert sorted(loaded.arrays) == sorted(snapshot.arrays)
        for name, array in snapshot.arrays.items():
            assert (loaded.arrays[name] == array).all()
        describe = loaded.describe()
        assert describe["processed_accesses"] == 2_000
        assert describe["total_bytes"] == loaded.nbytes

    def test_snapshot_restore_via_file(self, tmp_path):
        """run_trace(snapshot=path) loads the file and runs only the tail."""
        config = _config()
        cold = _cold(config)
        system = ServerSystem(config, workload_name=WORKLOAD)
        snapshot, _, _ = capture_warmup(system, _trace(), ACCESSES // 2)
        path = tmp_path / "snap.npz"
        save_snapshot(snapshot, path)
        resumed = run_trace(_trace(), config, workload_name=WORKLOAD,
                            snapshot=str(path))
        assert result_fingerprint(cold) == result_fingerprint(resumed)

    def test_cross_process_restore(self, tmp_path):
        """A snapshot written here restores bit-identically in a fresh
        interpreter (the campaign's worker-process reuse path)."""
        config = _config()
        cold = _cold(config)
        system = ServerSystem(config, workload_name=WORKLOAD)
        snapshot, _, _ = capture_warmup(system, _trace(), ACCESSES // 2)
        path = tmp_path / "snap.npz"
        save_snapshot(snapshot, path)
        script = (
            "from repro.exec.campaign import result_fingerprint\n"
            "from repro.sim.config import named_configs\n"
            "from repro.sim.runner import build_trace, run_trace\n"
            f"config = named_configs(['bump'])['bump']\n"
            f"trace = build_trace({WORKLOAD!r}, {ACCESSES}, "
            f"num_cores={CORES}, seed={SEED})\n"
            f"result = run_trace(trace, config, workload_name={WORKLOAD!r}, "
            f"snapshot={str(path)!r})\n"
            "print(result_fingerprint(result))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, check=True)
        assert proc.stdout.strip() == result_fingerprint(cold)


class TestValidation:
    def test_snapshot_and_warmup_snapshot_conflict(self, tmp_path):
        with pytest.raises(ValueError, match="either snapshot or"):
            run_trace(_trace(), _config(), snapshot=object(),
                      warmup_snapshot=ArtifactStore(tmp_path))

    def test_warmup_snapshot_requires_key(self, tmp_path):
        with pytest.raises(ValueError, match="snapshot_key"):
            run_trace(_trace(), _config(), warmup_fraction=0.5,
                      warmup_snapshot=ArtifactStore(tmp_path))

    def test_snapshot_extra_agents_conflict(self):
        with pytest.raises(ValueError, match="extra_agents"):
            run_trace(_trace(), _config(), snapshot=object(),
                      extra_agents=[object()])

    def test_config_mismatch_rejected(self):
        system = ServerSystem(_config(), workload_name=WORKLOAD)
        snapshot, _, _ = capture_warmup(system, _trace(), 2_000)
        with pytest.raises(ValueError, match="different system configuration"):
            run_trace(_trace(), _config("base_open"), snapshot=snapshot)

    def test_warmup_length_mismatch_rejected(self, tmp_path):
        """A stored snapshot warmed over N accesses cannot stand in for a
        run requesting a different warmup length under the same key."""
        config = _config()
        store = ArtifactStore(tmp_path)
        key = "ab" * 16
        run_trace(_trace(), config, workload_name=WORKLOAD,
                  warmup_fraction=0.5, warmup_snapshot=store,
                  snapshot_key=key)
        with pytest.raises(ValueError, match="was captured after"):
            run_trace(_trace(), config, workload_name=WORKLOAD,
                      warmup_fraction=0.25, warmup_snapshot=store,
                      snapshot_key=key)

    def test_format_version_guard(self, tmp_path):
        system = ServerSystem(_config(), workload_name=WORKLOAD)
        snapshot, _, _ = capture_warmup(system, _trace(), 2_000)
        snapshot.format_version = SNAPSHOT_FORMAT_VERSION + 1
        path = tmp_path / "future.npz"
        save_snapshot(snapshot, path)
        with pytest.raises(ValueError, match="format"):
            load_snapshot(path)

    def test_empty_warmup_rejected(self):
        system = ServerSystem(_config(), workload_name=WORKLOAD)
        with pytest.raises(ValueError):
            capture_warmup(system, _trace(), 0)


class TestWarmupLengthValidation:
    """Satellite: 'trace shorter than requested warmup' raises early."""

    def test_known_length_raises_before_simulating(self):
        """With a materialized trace the error fires before the simulator
        consumes anything (the declared length overstates the stream)."""
        config = _config()
        short = build_trace(WORKLOAD, 100, num_cores=CORES, seed=SEED)
        with pytest.raises(ValueError, match="shorter than the requested"):
            run_trace(short, config, workload_name=WORKLOAD,
                      num_accesses=1_000, warmup_fraction=0.5)

    def test_unknown_length_still_raises_at_stream_end(self):
        """Generator streams have no knowable length up front; the check
        still fires once the stream is exhausted inside the warmup."""
        config = _config()
        short = build_trace(WORKLOAD, 100, num_cores=CORES, seed=SEED)

        def chunks():
            yield from as_chunk_iterator(short)

        with pytest.raises(ValueError, match="shorter than the requested"):
            run_trace(chunks(), config, workload_name=WORKLOAD,
                      num_accesses=1_000, warmup_fraction=0.5)


class TestStore:
    def _snapshot(self):
        system = ServerSystem(_config(), workload_name=WORKLOAD)
        snapshot, _, _ = capture_warmup(system, _trace(), 2_000)
        return snapshot

    def test_round_trip_and_counters(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = "cd" * 16
        assert store.get_snapshot(digest) is None
        assert store.counters["misses"] == 1
        store.put_snapshot(digest, self._snapshot())
        loaded = store.get_snapshot(digest)
        assert loaded is not None
        assert loaded.processed == 2_000
        assert store.counters["hits"] == 1
        info = snapshot_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_corrupt_snapshot_is_removed_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = "ef" * 16
        store.put_snapshot(digest, self._snapshot())
        path = store.root / "snapshots" / f"{digest}.npz"
        path.write_bytes(b"not a zip archive")
        assert store.get_snapshot(digest) is None
        assert store.counters["corrupt"] == 1
        assert not path.exists()

    def test_stats_report_per_kind(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_snapshot("12" * 16, self._snapshot())
        store.put_result("34" * 16, {"answer": 42})
        stats = store.stats()
        assert stats["kinds"]["snapshots"]["entries"] == 1
        assert stats["kinds"]["snapshots"]["bytes"] > 0
        assert stats["kinds"]["results"]["entries"] == 1
        assert stats["entries"] == 2

    def test_prune_covers_snapshots(self, tmp_path):
        store = ArtifactStore(tmp_path, max_entries=1)
        store.put_snapshot("56" * 16, self._snapshot())
        store.put_snapshot("78" * 16, self._snapshot())
        assert store.entry_count() == 1
        assert store.counters["evictions"] >= 1


class TestFingerprint:
    def test_sensitivity(self):
        spec = get_workload(WORKLOAD)
        config = _config()
        base = snapshot_fingerprint(spec, config, 2_000, num_cores=CORES,
                                    seed=SEED)
        assert base == snapshot_fingerprint(spec, config, 2_000,
                                            num_cores=CORES, seed=SEED)
        assert base != snapshot_fingerprint(spec, config, 2_001,
                                            num_cores=CORES, seed=SEED)
        assert base != snapshot_fingerprint(spec, config, 2_000,
                                            num_cores=CORES, seed=SEED + 1)
        assert base != snapshot_fingerprint(spec, _config("base_open"), 2_000,
                                            num_cores=CORES, seed=SEED)
        assert base != snapshot_fingerprint(spec, config, 2_000,
                                            num_cores=CORES, seed=SEED,
                                            cache_engine="dict")

    def test_config_rename_shares_snapshot(self):
        """The fingerprint keys on configuration content, not display name."""
        import dataclasses

        spec = get_workload(WORKLOAD)
        config = _config()
        renamed = dataclasses.replace(config, name="renamed")
        assert (snapshot_fingerprint(spec, config, 2_000)
                == snapshot_fingerprint(spec, renamed, 2_000))


class TestRunnerIntegration:
    def test_run_workload_streaming_warmup_snapshot(self, tmp_path):
        store = ArtifactStore(tmp_path)
        config = _config()
        cold = run_workload_streaming(WORKLOAD, config, num_accesses=ACCESSES,
                                      num_cores=CORES, seed=SEED,
                                      warmup_fraction=0.5)
        run_workload_streaming(WORKLOAD, config, num_accesses=ACCESSES,
                               num_cores=CORES, seed=SEED,
                               warmup_fraction=0.5, warmup_snapshot=store)
        restored = run_workload_streaming(WORKLOAD, config,
                                          num_accesses=ACCESSES,
                                          num_cores=CORES, seed=SEED,
                                          warmup_fraction=0.5,
                                          warmup_snapshot=store)
        info = snapshot_cache_info()
        assert info["captures"] == 1 and info["restores"] == 1
        assert result_fingerprint(cold) == result_fingerprint(restored)

    def test_telemetry_on_restored_run_matches_off(self, tmp_path):
        """Telemetry on a snapshot run stays observational: results with a
        recorder are bit-identical to results without one."""
        store = ArtifactStore(tmp_path)
        config = _config()
        key = "9a" * 16
        run_trace(_trace(), config, workload_name=WORKLOAD,
                  warmup_fraction=0.5, warmup_snapshot=store,
                  snapshot_key=key)
        plain = run_trace(_trace(), config, workload_name=WORKLOAD,
                          warmup_fraction=0.5, warmup_snapshot=store,
                          snapshot_key=key)
        recorded = run_trace(_trace(), config, workload_name=WORKLOAD,
                             warmup_fraction=0.5, warmup_snapshot=store,
                             snapshot_key=key, telemetry="full")
        assert result_fingerprint(plain) == result_fingerprint(recorded)


class TestCampaign:
    def _jobs(self):
        return JobGrid(workloads=[WORKLOAD],
                       configs=["base_open", "bump"], seeds=[SEED],
                       num_accesses=ACCESSES, num_cores=CORES,
                       warmup_fraction=0.5).expand()

    def test_warmup_snapshots_parity_serial(self, tmp_path):
        jobs = self._jobs()
        cold = run_campaign(jobs, store=None, workers=1)
        warm = run_campaign(jobs, store=ArtifactStore(tmp_path / "a"),
                            workers=1, warmup_snapshots=True)
        for left, right in zip(cold.outcomes, warm.outcomes):
            assert (result_fingerprint(left.result)
                    == result_fingerprint(right.result)), left.job.label
        assert "snapshot_cache" in warm.metrics

    def test_warmup_snapshots_parity_parallel(self, tmp_path):
        jobs = self._jobs()
        cold = run_campaign(jobs, store=None, workers=1)
        warm = run_campaign(jobs, store=ArtifactStore(tmp_path / "b"),
                            workers=2, warmup_snapshots=True)
        for left, right in zip(cold.outcomes, warm.outcomes):
            assert (result_fingerprint(left.result)
                    == result_fingerprint(right.result)), left.job.label

    def test_resumed_campaign_restores_snapshot(self, tmp_path):
        """Dropping the result artifacts but keeping the snapshots makes a
        re-run restore instead of re-warming (fork-per-query amortization)."""
        jobs = self._jobs()
        store = ArtifactStore(tmp_path)
        run_campaign(jobs, store=store, workers=1, warmup_snapshots=True)
        for path in (store.root / "results").glob("*.pkl"):
            path.unlink()
        reset_snapshot_counters()
        run_campaign(jobs, store=store, workers=1, warmup_snapshots=True)
        info = snapshot_cache_info()
        assert info["restores"] == len(jobs)
        assert info["captures"] == 0

    def test_warmup_snapshots_require_store(self):
        with pytest.raises(ValueError, match="store"):
            run_campaign(self._jobs(), store=None, warmup_snapshots=True)
