"""Tests for the experiment harness and reporting helpers.

The experiment functions are exercised end-to-end on a single workload with a
short trace; the goal is to validate shapes, keys and caching behaviour, not
the calibrated magnitudes (the benchmark harness checks those at full trace
length).
"""

import pytest

from repro.analysis import experiments, paper_data
from repro.analysis.experiments import (
    clear_result_cache,
    figure2_row_buffer_hit,
    figure3_traffic_breakdown,
    figure5_region_density,
    figure9_energy_per_access,
    figure10_performance,
    figure13_summary,
    table1_late_writes,
    table4_bump_row_hits,
)
from repro.analysis.reporting import (
    format_comparison,
    format_nested_mapping,
    format_percent,
    format_table,
)

WORKLOADS = ["web_search"]
ACCESSES = 30_000


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_result_cache()
    yield
    clear_result_cache()


def test_figure2_shape_and_caching():
    table = figure2_row_buffer_hit(WORKLOADS, num_accesses=ACCESSES)
    assert set(table) == set(WORKLOADS)
    assert set(table["web_search"]) == {"base_open", "sms", "vwq", "ideal"}
    assert all(0.0 <= value <= 1.0 for value in table["web_search"].values())
    # A second call must be served from the result cache (same object).
    cached = figure2_row_buffer_hit(WORKLOADS, num_accesses=ACCESSES)
    assert cached == table
    assert len(experiments._RESULT_CACHE) >= 4


def test_figure3_fractions_sum_to_one():
    table = figure3_traffic_breakdown(WORKLOADS, num_accesses=ACCESSES)
    mix = table["web_search"]
    assert set(mix) == {"load_reads", "store_reads", "writes"}
    assert sum(mix.values()) == pytest.approx(1.0)


def test_figure5_and_table1_density_outputs():
    density = figure5_region_density(WORKLOADS, num_accesses=ACCESSES)
    entry = density["web_search"]
    assert set(entry["reads"]) == {"low", "medium", "high"}
    assert sum(entry["reads"].values()) == pytest.approx(1.0)
    late = table1_late_writes(WORKLOADS, num_accesses=ACCESSES)
    assert 0.0 <= late["web_search"] <= 1.0


def test_figure9_normalisation_reference_is_base_close():
    table = figure9_energy_per_access(WORKLOADS, num_accesses=ACCESSES)
    row = table["web_search"]
    assert row["base_close"]["normalized"] == pytest.approx(1.0)
    assert row["bump"]["total_nj"] > 0


def test_figure10_reports_relative_improvements():
    table = figure10_performance(WORKLOADS, num_accesses=ACCESSES)
    row = table["web_search"]
    assert set(row) == {"base_open", "full_region", "bump"}
    assert row["full_region"] < 0.0


def test_figure13_and_table4_summary():
    summary = figure13_summary(WORKLOADS, num_accesses=ACCESSES)
    assert set(summary) == {"base_close", "base_open", "sms", "vwq", "sms_vwq",
                            "bump", "ideal"}
    assert summary["base_close"]["energy_normalized"] == pytest.approx(1.0)
    table4 = table4_bump_row_hits(WORKLOADS, num_accesses=ACCESSES)
    assert 0.0 < table4["web_search"] <= 1.0


def test_paper_reference_values_are_self_consistent():
    assert set(paper_data.TABLE4_BUMP_ROW_HITS) == set(paper_data.WORKLOAD_ORDER)
    assert set(paper_data.TABLE1_LATE_WRITES) == set(paper_data.WORKLOAD_ORDER)
    ordered = paper_data.ROW_BUFFER_HIT_RATIO_AVG
    assert ordered["base_open"] < ordered["sms"] < ordered["vwq"] < ordered["sms_vwq"] \
        < ordered["bump"] < ordered["ideal"]


# --------------------------------------------------------------------- #
# Reporting helpers
# --------------------------------------------------------------------- #
def test_format_table_aligns_columns():
    text = format_table([["a", "1"], ["longer", "22"]], headers=["name", "value"])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert all(len(line) >= len("longer") for line in lines[2:])


def test_format_percent():
    assert format_percent(0.236) == "23.6%"
    assert format_percent(1.0, digits=0) == "100%"


def test_format_nested_mapping_and_comparison():
    table = {"web_search": {"a": 0.5, "b": 0.25}}
    text = format_nested_mapping(table, value_format="{:.2f}", title="T")
    assert "T" in text and "web_search" in text and "0.50" in text
    comparison = format_comparison({"x": 0.5}, {"x": 0.6}, title="C")
    assert "0.50" in comparison and "0.60" in comparison
    missing = format_comparison({"y": 0.5}, {}, title="C")
    assert "-" in missing
    assert format_nested_mapping({}) == ""
